//! Greedy module placement — Algorithm 1, lines 2–12, plus the
//! leftover-memory replication pass described in Sec. V-B.
//!
//! The scoring loops run on [`ResolvedInstance`]'s interned indices and
//! flat compute tables (no string-keyed maps); the returned [`Placement`]
//! still speaks string ids at the boundary.

use crate::error::CoreError;
use crate::problem::{Instance, Placement};
use crate::resolved::ResolvedInstance;

/// Options for the greedy placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementOptions {
    /// After the initial pass, replicate modules (largest first) onto any
    /// device with leftover memory. Replicas never hurt single-request
    /// latency and relieve queuing under concurrent load (Sec. V-B).
    pub replicate: bool,
}

/// Greedy placement with default options (no replication — the literal
/// Algorithm 1).
///
/// # Errors
///
/// [`CoreError::Infeasible`] when some module fits on no device;
/// [`CoreError::EmptyFleet`] on an empty fleet.
pub fn greedy_place(instance: &Instance) -> Result<Placement, CoreError> {
    greedy_place_with(instance, PlacementOptions::default())
}

/// Greedy placement, configurable.
///
/// Modules are visited in descending memory order (`max_m r_m` first,
/// Sec. V-B: compute-intensive modules are prioritized). Each is placed
/// on the feasible device with the shortest *completion time*:
///
/// - encoders (Eq. 5): `t_comp(m, n)` plus the accumulated compute of all
///   modules already placed on `n` — spreading heavy encoders apart so
///   they can run in parallel;
/// - heads (Eq. 6): pure `t_comp(m, n)` — heads run after all encoders,
///   so accumulated encoder load does not delay them.
///
/// # Errors
///
/// See [`greedy_place`].
pub fn greedy_place_with(
    instance: &Instance,
    opts: PlacementOptions,
) -> Result<Placement, CoreError> {
    let resolved = ResolvedInstance::new(instance)?;
    greedy_place_resolved(&resolved, opts)
}

/// Greedy placement over a pre-built [`ResolvedInstance`] (hot-loop
/// entry point — callers that already hold one skip re-interning).
///
/// # Errors
///
/// See [`greedy_place`].
pub fn greedy_place_resolved(
    resolved: &ResolvedInstance,
    opts: PlacementOptions,
) -> Result<Placement, CoreError> {
    let nd = resolved.device_count();
    let mut remaining: Vec<u64> = (0..nd as u32).map(|d| resolved.device_budget(d)).collect();
    let mut placement = Placement::new();

    let modules: Vec<u32> = (0..resolved.module_count() as u32).collect();
    let modules = place_modules_resolved(resolved, modules, &mut remaining, &mut placement)?;

    if opts.replicate {
        // Largest modules first, any device with leftover room.
        for &m in &modules {
            let need = resolved.module_memory(m);
            for d in 0..nd as u32 {
                let (mid, did) = (resolved.module_name(m), resolved.device_name(d));
                if !placement.is_placed(mid, did) && need <= remaining[d as usize] {
                    placement.place(mid.clone(), did.clone());
                    remaining[d as usize] -= need;
                }
            }
        }
    }

    Ok(placement)
}

/// The shared Eqs. 5/6 scoring-and-first-fit loop: places `modules`
/// (any subset of the interned module space) into `placement`, debiting
/// `remaining` per device. Returns the modules in the visit order
/// (descending memory, module id — i.e. index — breaking ties), which
/// the replication pass reuses.
///
/// Used by both [`greedy_place_resolved`] and the partitioned placer's
/// fitting-modules phase, so the completion-time rule lives in exactly
/// one place.
///
/// # Errors
///
/// [`CoreError::Infeasible`] when some module fits on no device.
pub(crate) fn place_modules_resolved(
    resolved: &ResolvedInstance,
    mut modules: Vec<u32>,
    remaining: &mut [u64],
    placement: &mut Placement,
) -> Result<Vec<u32>, CoreError> {
    let nd = resolved.device_count();
    // Accumulated compute time of *encoder* modules already placed per
    // device (the Σ_{m'} x_{m',n} t_comp(m',n) term of Eq. 5). Only
    // encoders accumulate: they are the modules that contend for the
    // per-request parallel phase, whereas heads run strictly after all
    // encodings and so do not delay a co-located encoder. (Summing heads
    // too would push encoders off any device hosting an LLM head and
    // lose the co-location the paper's measured placements exhibit.)
    let mut accum: Vec<f64> = vec![0.0; nd];

    // Descending memory requirement; module id — which is module index
    // order — breaks ties determinately.
    modules.sort_by(|&a, &b| {
        resolved
            .module_memory(b)
            .cmp(&resolved.module_memory(a))
            .then_with(|| a.cmp(&b))
    });

    let mut scored: Vec<(f64, u32)> = Vec::with_capacity(nd);
    for &m in &modules {
        // Score each device by completion time t_place (Eqs. 5/6).
        let is_encoder = resolved.module_kind(m).is_encoder();
        scored.clear();
        for d in 0..nd as u32 {
            let t_comp = resolved.placement_compute(m, d);
            let t_place = if is_encoder {
                t_comp + accum[d as usize]
            } else {
                t_comp
            };
            scored.push((t_place, d));
        }
        scored.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| resolved.device_rank(a.1).cmp(&resolved.device_rank(b.1)))
        });

        let need = resolved.module_memory(m);
        let mut placed = false;
        for &(_, n) in &scored {
            if need <= remaining[n as usize] {
                placement.place(
                    resolved.module_name(m).clone(),
                    resolved.device_name(n).clone(),
                );
                remaining[n as usize] -= need;
                if is_encoder {
                    accum[n as usize] += resolved.placement_compute(m, n);
                }
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(CoreError::Infeasible {
                module: resolved.module_name(m).clone(),
                required_bytes: need,
                best_remaining_bytes: remaining.iter().copied().max().unwrap_or(0),
            });
        }
    }
    Ok(modules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_net::fleet::Fleet;

    #[test]
    fn places_every_distinct_module_exactly_once() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let p = greedy_place(&i).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.modules().count(), 3);
    }

    #[test]
    fn compute_heavy_modules_land_on_fast_devices() {
        // With 101 candidate prompts the text encoder is the heaviest
        // compute; greedy must keep it off the Jetsons.
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let p = greedy_place(&i).unwrap();
        let text_host = p.hosts(&"text/CLIP-B-16".into()).next().unwrap();
        assert!(
            text_host.as_str() == "laptop" || text_host.as_str() == "desktop",
            "text encoder on {text_host}"
        );
        let vision_host = p.hosts(&"vision/ViT-B-16".into()).next().unwrap();
        assert_ne!(
            vision_host, text_host,
            "parallel encoders should spread across devices"
        );
    }

    #[test]
    fn encoders_spread_for_parallelism_eq5() {
        // Eq. 5's accumulation term: once the desktop holds the vision
        // encoder, the text encoder's completion time there includes it,
        // pushing the text encoder to the laptop (or vice versa).
        let i = Instance::single_model("CLIP ViT-L/14", 101).unwrap();
        let p = greedy_place(&i).unwrap();
        let v = p.hosts(&"vision/ViT-L-14".into()).next().unwrap();
        let t = p.hosts(&"text/CLIP-L-14".into()).next().unwrap();
        assert_ne!(v, t);
    }

    #[test]
    fn respects_memory_budgets() {
        let i = Instance::single_model("ImageBind", 16).unwrap();
        let p = greedy_place(&i).unwrap();
        // Jetson (1.1 GB) cannot hold the 630M-param ViT-H tower.
        for jetson in ["jetson-a", "jetson-b"] {
            assert!(
                !p.is_placed(&"vision/OpenCLIP-ViT-H-14".into(), &jetson.into()),
                "ViT-H placed on {jetson}"
            );
        }
    }

    #[test]
    fn infeasible_when_nothing_fits() {
        // Two Jetsons alone cannot host Vicuna-13B (26 GB fp16).
        let fleet = Fleet::standard_testbed()
            .restricted_to(&["jetson-a", "jetson-b"])
            .unwrap();
        let i = Instance::on_fleet(fleet, &[("LLaVA-v1.5-13B", 1)]).unwrap();
        match greedy_place(&i) {
            Err(CoreError::Infeasible { module, .. }) => {
                assert!(
                    module.as_str().contains("Vicuna-13B") || module.as_str().contains("ViT-L")
                );
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn replication_fills_leftover_memory() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let base = greedy_place(&i).unwrap();
        let replicated = greedy_place_with(&i, PlacementOptions { replicate: true }).unwrap();
        assert!(replicated.len() > base.len());
        // Every base assignment survives replication.
        for (m, d) in base.iter() {
            assert!(replicated.is_placed(m, d));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let i = Instance::on_fleet(
            Fleet::standard_testbed(),
            &[
                ("CLIP ViT-B/16", 101),
                ("ImageBind", 16),
                ("Flint-v0.5-1B", 1),
            ],
        )
        .unwrap();
        let a = greedy_place(&i).unwrap();
        let b = greedy_place(&i).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn multi_task_shared_modules_placed_once() {
        let i = Instance::on_fleet(
            Fleet::edge_testbed(),
            &[
                ("CLIP ViT-B/16", 101),
                ("Encoder-only VQA (Small)", 1),
                ("AlignBind-B", 16),
                ("CLIP-Classifier Food-101", 0),
            ],
        )
        .unwrap();
        let p = greedy_place(&i).unwrap();
        // 3 encoders + 4 heads... distinct modules: vision, text, audio,
        // cosine, vqa classifier, infonce, food classifier = 7.
        assert_eq!(p.len(), 7);
        assert_eq!(p.hosts(&"vision/ViT-B-16".into()).count(), 1);
    }
}
