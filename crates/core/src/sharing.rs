//! Multi-task sharing accounting (Sec. IV-B / Table X).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use s2m3_models::module::ModuleId;

use crate::problem::Instance;

/// One row of the sharing progression: cumulative deployment cost after
/// each task is added, with and without module sharing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharingRow {
    /// The model added at this step.
    pub model: String,
    /// Parameters this step *added* under sharing (only uncommon modules).
    pub added_shared_params: u64,
    /// Cumulative parameters with sharing (`O(c · r)` of Sec. IV-B).
    pub cumulative_shared_params: u64,
    /// Cumulative parameters without sharing (`O(|M| · r)`).
    pub cumulative_dedicated_params: u64,
}

/// The full progression over an instance's deployments, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharingReport {
    /// One row per deployed model, in deployment order.
    pub rows: Vec<SharingRow>,
}

impl SharingReport {
    /// Builds the progression for `instance`'s deployment order.
    pub fn for_instance(instance: &Instance) -> Self {
        let mut seen: BTreeSet<ModuleId> = BTreeSet::new();
        let mut shared = 0u64;
        let mut dedicated = 0u64;
        let mut rows = Vec::new();
        for d in instance.deployments() {
            let mut added = 0u64;
            for m in d.model.modules() {
                if seen.insert(m.id.clone()) {
                    added += m.params;
                }
                dedicated += m.params;
            }
            shared += added;
            rows.push(SharingRow {
                model: d.model.name.clone(),
                added_shared_params: added,
                cumulative_shared_params: shared,
                cumulative_dedicated_params: dedicated,
            });
        }
        SharingReport { rows }
    }

    /// Final memory saving of sharing vs dedicated deployment, percent.
    pub fn savings_percent(&self) -> f64 {
        match self.rows.last() {
            Some(last) if last.cumulative_dedicated_params > 0 => {
                100.0
                    * (1.0
                        - last.cumulative_shared_params as f64
                            / last.cumulative_dedicated_params as f64)
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_net::fleet::Fleet;

    fn table_x_instance() -> Instance {
        Instance::on_fleet(
            Fleet::edge_testbed(),
            &[
                ("CLIP ViT-B/16", 101),
                ("Encoder-only VQA (Small)", 1),
                ("AlignBind-B", 16),
                ("CLIP-Classifier Food-101", 0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn progression_matches_table_x() {
        let r = SharingReport::for_instance(&table_x_instance());
        let shared_m: Vec<u64> = r
            .rows
            .iter()
            .map(|row| row.cumulative_shared_params / 1_000_000)
            .collect();
        let dedicated_m: Vec<u64> = r
            .rows
            .iter()
            .map(|row| row.cumulative_dedicated_params / 1_000_000)
            .collect();
        assert_eq!(shared_m, vec![124, 124, 209, 209]);
        assert_eq!(dedicated_m, vec![124, 248, 457, 543]);
    }

    #[test]
    fn savings_match_paper_up_to_62_percent() {
        let r = SharingReport::for_instance(&table_x_instance());
        let s = r.savings_percent();
        assert!((58.0..64.0).contains(&s), "savings {s:.1}%");
    }

    #[test]
    fn single_model_has_no_savings() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let r = SharingReport::for_instance(&i);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.savings_percent(), 0.0);
        assert_eq!(
            r.rows[0].cumulative_shared_params,
            r.rows[0].cumulative_dedicated_params
        );
    }

    #[test]
    fn dedicated_instance_shares_nothing() {
        let r = SharingReport::for_instance(&table_x_instance().dedicated());
        let last = r.rows.last().unwrap();
        assert_eq!(
            last.cumulative_shared_params,
            last.cumulative_dedicated_params
        );
        assert_eq!(r.savings_percent(), 0.0);
    }
}
