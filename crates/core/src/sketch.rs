//! Streaming quantile sketch: a fixed-size log-spaced histogram for
//! memory-flat latency summaries.
//!
//! The online serving driver must summarize millions of latencies
//! without holding them: this sketch buckets values on a geometric
//! grid with growth factor [`GROWTH`] over `[1 ns, 1e9 s]`, so any
//! reported quantile is the geometric midpoint of its bucket and lies
//! within **√GROWTH − 1 ≈ 0.995% < 1% relative error** of the exact
//! order statistic. Count and sum are tracked exactly (the mean is
//! exact), as are the minimum and maximum, and quantile answers are
//! clamped into `[min, max]`. The whole sketch is ~16 KiB regardless
//! of how many values it absorbs.
//!
//! Quantile semantics match
//! [`percentile_sorted`](../../s2m3_serve/slo/fn.percentile_sorted.html)'s
//! ceil-rank rule (`k = clamp(⌈p·n⌉, 1, n)`), so with streaming off
//! and on, the *same* order statistic is being estimated.

use serde::{Deserialize, Serialize};

/// Geometric bucket growth factor. Relative quantile error is bounded
/// by `sqrt(GROWTH) - 1` (≈ 0.995%).
pub const GROWTH: f64 = 1.02;

/// Smallest representable value, seconds (1 ns). Values below clamp
/// into the first bucket.
pub const MIN_VALUE: f64 = 1.0e-9;

/// Largest representable value, seconds. Values above clamp into the
/// last bucket.
pub const MAX_VALUE: f64 = 1.0e9;

/// Number of geometric buckets covering `[MIN_VALUE, MAX_VALUE]`.
/// `ceil(ln(MAX/MIN) / ln(GROWTH))` = 2094 at the constants above.
fn bucket_count() -> usize {
    ((MAX_VALUE / MIN_VALUE).ln() / GROWTH.ln()).ceil() as usize
}

/// A fixed-memory log-spaced histogram over positive latencies.
///
/// Records are `O(1)`; quantiles are one pass over the (constant-size)
/// bucket array. See the module docs for the error bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySketch {
    /// Per-bucket counts; bucket `i` covers
    /// `[MIN_VALUE·GROWTH^i, MIN_VALUE·GROWTH^(i+1))`.
    counts: Vec<u64>,
    /// Total values recorded (exact).
    count: u64,
    /// Sum of recorded values (exact mean numerator).
    sum: f64,
    /// Exact minimum recorded value.
    min: f64,
    /// Exact maximum recorded value.
    max: f64,
}

impl Default for LatencySketch {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencySketch {
    /// An empty sketch (~16 KiB, fixed).
    pub fn new() -> Self {
        LatencySketch {
            counts: vec![0; bucket_count()],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for `v`, clamped to the covered range.
    fn bucket_of(&self, v: f64) -> usize {
        if v.is_nan() || v <= MIN_VALUE {
            return 0;
        }
        let i = ((v / MIN_VALUE).ln() / GROWTH.ln()).floor() as usize;
        i.min(self.counts.len() - 1)
    }

    /// Records one value. Non-finite and negative values clamp to the
    /// range edges (latencies are non-negative by construction).
    pub fn record(&mut self, v: f64) {
        let v = if v.is_finite() { v } else { MAX_VALUE };
        let idx = self.bucket_of(v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// The `p`-quantile (`p ∈ [0, 1]`) under the ceil-rank rule
    /// `k = clamp(⌈p·n⌉, 1, n)`: the geometric midpoint of the bucket
    /// holding the k-th smallest value, clamped into `[min, max]`.
    /// Relative error vs. the exact order statistic is ≤
    /// `sqrt(GROWTH) - 1` (≈ 0.995%). Returns 0 when empty.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let k = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= k {
                let mid = MIN_VALUE * GROWTH.powf(i as f64 + 0.5);
                return mid.clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Merges another sketch into this one (bucket-wise).
    pub fn merge(&mut self, other: &LatencySketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact ceil-rank order statistic over a sorted slice — the
    /// reference the sketch approximates.
    fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
        let n = sorted.len();
        let k = ((p * n as f64).ceil() as usize).clamp(1, n);
        sorted[k - 1]
    }

    #[test]
    fn empty_sketch_reports_zeroes() {
        let s = LatencySketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn single_value_is_recovered_within_bound() {
        let mut s = LatencySketch::new();
        s.record(3.7);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.7);
        assert_eq!(s.max(), 3.7);
        let q = s.quantile(0.5);
        assert!((q - 3.7).abs() / 3.7 <= GROWTH.sqrt() - 1.0);
    }

    #[test]
    fn quantiles_match_exact_within_one_percent() {
        let mut s = LatencySketch::new();
        let mut vals: Vec<f64> = (1..=10_000)
            .map(|i| 0.001 * (i as f64) * (1.0 + 0.3 * ((i * 7) % 13) as f64))
            .collect();
        for &v in &vals {
            s.record(v);
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &p in &[0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&vals, p);
            let approx = s.quantile(p);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= 0.01,
                "p={p}: exact {exact}, sketch {approx}, rel err {rel}"
            );
        }
    }

    #[test]
    fn mean_count_max_are_exact() {
        let mut s = LatencySketch::new();
        let vals = [0.5, 1.5, 2.5, 10.0];
        for &v in &vals {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), vals.iter().sum::<f64>() / 4.0);
        assert_eq!(s.max(), 10.0);
        assert_eq!(s.min(), 0.5);
    }

    #[test]
    fn out_of_range_values_clamp_without_panic() {
        let mut s = LatencySketch::new();
        s.record(0.0);
        s.record(-1.0);
        s.record(1.0e12);
        s.record(f64::NAN);
        assert_eq!(s.count(), 4);
        assert!(s.quantile(0.5).is_finite());
        assert!(s.quantile(1.0).is_finite());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencySketch::new();
        let mut b = LatencySketch::new();
        let mut all = LatencySketch::new();
        for i in 1..200 {
            let v = 0.01 * i as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn quantile_is_clamped_into_observed_range() {
        let mut s = LatencySketch::new();
        s.record(5.0);
        s.record(5.0);
        assert!(s.quantile(0.0) >= 5.0 * (1.0 - 0.01));
        assert!(s.quantile(1.0) <= 5.0 * (1.0 + 0.01));
        assert!(s.quantile(1.0) >= s.quantile(0.0));
    }
}
