//! Adaptive reallocation under fleet changes (Sec. VI-C).
//!
//! > "Regarding long-term changes such as device availability, S2M3 can
//! > provide reallocation with some switching costs. These switching and
//! > relocation overheads can be further optimized through adaptive
//! > placement."
//!
//! Given an existing placement and a changed fleet, this module computes
//! the fresh greedy placement, the set of module migrations it implies,
//! the one-time switching cost (download + load of every migrated
//! module on its new device), and the per-request latency gain — from
//! which [`ReplanDecision::break_even_requests`] says how many future
//! requests amortize the switch (footnote 1's 20.44 s placement vs 2.44 s
//! inference trade-off, generalized).
//!
//! This module is the *decision kernel*; the online loop around it lives
//! in the `s2m3-serve` crate, whose replan controller calls [`replan`]
//! on every fleet event, accepts the decision only when
//! [`ReplanDecision::break_even_requests`] clears the requests expected
//! at the observed arrival rate within its horizon, and charges
//! [`ReplanDecision::switching_cost_s`] as simulated downtime on the
//! migration targets. See `s2m3_serve::engine` for that integration and
//! the `churn` experiment in `s2m3-bench` for its measured effect.

use s2m3_models::module::ModuleId;
use s2m3_net::device::DeviceId;

use crate::error::CoreError;
use crate::placement::{greedy_place_resolved, PlacementOptions};
use crate::problem::{Instance, Placement};
use crate::resolved::ResolvedInstance;

/// One module migration.
#[derive(Debug, Clone, PartialEq)]
pub struct Migration {
    /// The module to move (or newly instantiate).
    pub module: ModuleId,
    /// Where it currently lives (`None` if it was never placed, e.g.
    /// after a device loss destroyed the copy).
    pub from: Option<DeviceId>,
    /// Destination device.
    pub to: DeviceId,
    /// Download + load time on the destination, seconds.
    pub cost_s: f64,
}

/// The outcome of a replanning pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanDecision {
    /// The fresh greedy placement on the new fleet.
    pub placement: Placement,
    /// Migrations required to get there from the old placement.
    pub migrations: Vec<Migration>,
    /// Total one-time switching cost, seconds.
    pub switching_cost_s: f64,
    /// Mean per-request latency under the *old* placement restricted to
    /// surviving devices (`None` if the old placement can no longer serve
    /// at all — migration is mandatory).
    pub old_latency_s: Option<f64>,
    /// Mean per-request latency under the new placement.
    pub new_latency_s: f64,
}

impl ReplanDecision {
    /// Per-request gain of switching, seconds (0 when the old placement
    /// cannot serve — the gain is then infinite in spirit; callers check
    /// [`Self::mandatory`]).
    pub fn per_request_gain_s(&self) -> f64 {
        match self.old_latency_s {
            Some(old) => (old - self.new_latency_s).max(0.0),
            None => f64::INFINITY,
        }
    }

    /// Whether switching is mandatory (the old placement lost a module).
    pub fn mandatory(&self) -> bool {
        self.old_latency_s.is_none()
    }

    /// Number of future requests after which the switch pays for itself;
    /// 0 when mandatory, `None` when the new placement is not faster.
    pub fn break_even_requests(&self) -> Option<u64> {
        self.break_even_requests_with_queue(0)
    }

    /// [`Self::break_even_requests`] with a queue-drain credit: `queued`
    /// requests already waiting realize the per-request gain immediately
    /// after the switch (they are served from the backlog, not from
    /// hypothetical future traffic), so their combined gain is charged
    /// against the switching cost before counting future requests.
    ///
    /// The steady-state gate compares means and therefore under-values a
    /// replan whose main benefit is draining an existing backlog — the
    /// overload case where the old placement keeps falling behind. With
    /// `queued = 0` this is exactly the steady-state break-even; the
    /// credit only ever lowers the answer (`max(0, steady - queued)` up
    /// to rounding), never raises it.
    pub fn break_even_requests_with_queue(&self, queued: u64) -> Option<u64> {
        if self.mandatory() {
            return Some(0);
        }
        let gain = self.per_request_gain_s();
        if gain <= 0.0 {
            return None;
        }
        let drained_s = queued as f64 * gain;
        Some(((self.switching_cost_s - drained_s).max(0.0) / gain).ceil() as u64)
    }
}

/// Replans for `new_instance` (typically the old instance on a changed
/// fleet), diffing against `old_placement`.
///
/// Latencies are means over one canonical request per deployed model.
///
/// # Errors
///
/// Placement/routing errors on the new fleet as [`CoreError`].
pub fn replan(
    new_instance: &Instance,
    old_placement: &Placement,
) -> Result<ReplanDecision, CoreError> {
    let resolved = ResolvedInstance::new(new_instance)?;
    let placement = greedy_place_resolved(&resolved, PlacementOptions::default())?;

    // Migrations: modules whose (sole) host changed or disappeared.
    let mut migrations = Vec::new();
    let mut switching_cost_s = 0.0;
    let specs: std::collections::BTreeMap<_, _> = new_instance
        .distinct_modules()
        .into_iter()
        .map(|m| (m.id.clone(), m.clone()))
        .collect();
    for (module, new_dev) in placement.iter() {
        if old_placement.is_placed(module, new_dev) {
            continue; // already there
        }
        let Some(spec) = specs.get(module) else {
            continue;
        };
        let from = old_placement.hosts(module).next().cloned();
        let cost_s = new_instance.device(new_dev)?.load_time(spec);
        switching_cost_s += cost_s;
        migrations.push(Migration {
            module: module.clone(),
            from,
            to: new_dev.clone(),
            cost_s,
        });
    }

    // Old placement restricted to surviving devices; can it still serve?
    let mut surviving = Placement::new();
    for (m, d) in old_placement.iter() {
        if new_instance.fleet().device(d.as_str()).is_some() {
            surviving.place(m.clone(), d.clone());
        }
    }
    let old_latency_s = mean_latency(&resolved, &surviving);
    let new_latency_s = match mean_latency(&resolved, &placement) {
        Some(latency) => latency,
        // A fresh greedy placement hosts every module, so this is
        // unreachable unless the greedy itself is broken — report the
        // module that lost its host, as the string path did.
        None => {
            let hosts = resolved.resolve_placement(&placement);
            let missing = (0..resolved.module_count() as u32)
                .find(|&m| hosts[m as usize].is_empty())
                .map(|m| resolved.module_name(m).clone())
                .unwrap_or_else(|| ModuleId::new("unknown"));
            return Err(CoreError::Unrouted(missing));
        }
    };

    Ok(ReplanDecision {
        placement,
        migrations,
        switching_cost_s,
        old_latency_s,
        new_latency_s,
    })
}

/// Mean canonical-request latency of `placement`, evaluated on the
/// interned tables; `None` when some required module has no surviving
/// host (the placement cannot serve — migration is mandatory).
fn mean_latency(resolved: &ResolvedInstance, placement: &Placement) -> Option<f64> {
    let hosts = resolved.resolve_placement(placement);
    let source = resolved.requester();
    let mut sum = 0.0;
    let mut n = 0usize;
    for k in 0..resolved.models().len() {
        let profile = resolved.models()[k].profile;
        let route = resolved.route_model(k, &profile, &hosts)?;
        sum += resolved.total_latency(k, &profile, source, |m| {
            route
                .iter()
                .find(|(rm, _)| *rm == m)
                .map(|(_, d)| *d)
                .expect("route covers every model module")
        });
        n += 1;
    }
    if n == 0 {
        return Some(0.0);
    }
    Some(sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::greedy_place;

    #[test]
    fn losing_the_text_host_forces_migration() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let old = greedy_place(&i).unwrap();
        let text: ModuleId = "text/CLIP-B-16".into();
        let text_host = old.hosts(&text).next().unwrap().clone();

        let degraded = i
            .with_fleet(i.fleet().without(&[text_host.as_str()]))
            .unwrap();
        let decision = replan(&degraded, &old).unwrap();
        assert!(decision.mandatory(), "old placement lost its text encoder");
        assert_eq!(decision.break_even_requests(), Some(0));
        assert!(decision
            .migrations
            .iter()
            .any(|m| m.module == text && m.to != text_host));
        assert!(decision.switching_cost_s > 0.0);
    }

    #[test]
    fn adding_the_server_is_worth_switching_after_few_requests() {
        // Start edge-only, then the GPU server appears: the new greedy
        // moves the heavy modules there; the one-time download+load cost
        // amortizes over a finite number of requests.
        let edge = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let old = greedy_place(&edge).unwrap();
        let upgraded = edge
            .with_fleet(s2m3_net::fleet::Fleet::standard_testbed())
            .unwrap();
        let decision = replan(&upgraded, &old).unwrap();
        assert!(!decision.mandatory());
        assert!(decision.new_latency_s < decision.old_latency_s.unwrap());
        let be = decision
            .break_even_requests()
            .expect("switching should pay off");
        // Footnote 1 regime: placement ~20 s vs per-request gains ~1 s →
        // tens of requests.
        assert!((1..=200).contains(&be), "break-even after {be} requests");
    }

    #[test]
    fn queue_drain_credit_accepts_what_the_steady_state_gate_rejects() {
        // The server-join opportunity: a finite positive break-even.
        let edge = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let old = greedy_place(&edge).unwrap();
        let upgraded = edge
            .with_fleet(s2m3_net::fleet::Fleet::standard_testbed())
            .unwrap();
        let decision = replan(&upgraded, &old).unwrap();
        let steady = decision.break_even_requests().expect("switch pays off");
        assert!(steady > 0);

        // A trickle of traffic: fewer requests expected in the horizon
        // than the steady-state break-even, so that gate rejects…
        let expected_in_horizon = (steady - 1) as f64;
        assert!((steady as f64) > expected_in_horizon);

        // …but a backlog as deep as the break-even drains the switching
        // cost by itself: the queue-aware gate accepts immediately.
        assert_eq!(decision.break_even_requests_with_queue(steady), Some(0));
        let with_credit = decision
            .break_even_requests_with_queue(steady / 2)
            .expect("still a win");
        assert!(
            (with_credit as f64) <= expected_in_horizon,
            "break-even {steady} with {} queued leaves {with_credit} future requests",
            steady / 2
        );

        // The credit is monotone and never worse than steady state.
        let mut last = steady;
        for q in 0..=steady {
            let b = decision.break_even_requests_with_queue(q).unwrap();
            assert!(b <= last, "credit must not raise the break-even");
            last = b;
        }
        // Zero credit is exactly the steady-state gate.
        assert_eq!(decision.break_even_requests_with_queue(0), Some(steady));
    }

    #[test]
    fn no_change_means_no_migrations() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let old = greedy_place(&i).unwrap();
        let decision = replan(&i, &old).unwrap();
        assert!(decision.migrations.is_empty());
        assert_eq!(decision.switching_cost_s, 0.0);
        assert_eq!(decision.break_even_requests(), None);
        assert!((decision.new_latency_s - decision.old_latency_s.unwrap()).abs() < 1e-12);
    }

    #[test]
    fn multi_task_replanning_preserves_sharing() {
        let i = Instance::on_fleet(
            s2m3_net::fleet::Fleet::edge_testbed(),
            &[("CLIP ViT-B/16", 101), ("Encoder-only VQA (Small)", 1)],
        )
        .unwrap();
        let old = greedy_place(&i).unwrap();
        let degraded = i.with_fleet(i.fleet().without(&["desktop"])).unwrap();
        let decision = replan(&degraded, &old).unwrap();
        // The shared vision tower migrates once, not once per task.
        let vision_migrations = decision
            .migrations
            .iter()
            .filter(|m| m.module.as_str() == "vision/ViT-B-16")
            .count();
        assert!(vision_migrations <= 1);
        assert!(decision.new_latency_s.is_finite());
    }
}
