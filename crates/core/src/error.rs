//! Error type for placement / routing / evaluation.

use s2m3_models::module::ModuleId;
use s2m3_net::device::DeviceId;

/// Errors from the core algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A model name was not found in the instance's zoo.
    UnknownModel(String),
    /// A device name was not found in the fleet.
    UnknownDevice(DeviceId),
    /// The instance has no devices.
    EmptyFleet,
    /// No device has enough free memory to host this module.
    Infeasible {
        /// Module that could not be placed.
        module: ModuleId,
        /// Its memory requirement, bytes.
        required_bytes: u64,
        /// The largest remaining budget among devices, bytes.
        best_remaining_bytes: u64,
    },
    /// A request's route references a module on a device that does not
    /// host it (violates constraint 4b).
    NotHosted {
        /// The module in question.
        module: ModuleId,
        /// The device the route pointed at.
        device: DeviceId,
    },
    /// A request requires a module the route does not cover (violates
    /// constraint 4c).
    Unrouted(ModuleId),
    /// A placement exceeds a device's memory budget (violates 4d).
    OverCapacity {
        /// Overloaded device.
        device: DeviceId,
        /// Bytes placed on it.
        placed_bytes: u64,
        /// Its budget `R_n`.
        budget_bytes: u64,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::UnknownModel(m) => write!(f, "unknown model {m}"),
            CoreError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            CoreError::EmptyFleet => write!(f, "the fleet has no devices"),
            CoreError::Infeasible {
                module,
                required_bytes,
                best_remaining_bytes,
            } => write!(
                f,
                "module {module} needs {required_bytes} B but the best device has {best_remaining_bytes} B free \
                 (consider compression or intra-module partitioning, Sec. V-B)"
            ),
            CoreError::NotHosted { module, device } => {
                write!(f, "route sends {module} to {device}, which does not host it")
            }
            CoreError::Unrouted(m) => write!(f, "request requires {m} but the route omits it"),
            CoreError::OverCapacity {
                device,
                placed_bytes,
                budget_bytes,
            } => write!(
                f,
                "device {device} holds {placed_bytes} B > budget {budget_bytes} B"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_actionable() {
        let e = CoreError::Infeasible {
            module: ModuleId::new("llm/Vicuna-13B"),
            required_bytes: 26_000_000_000,
            best_remaining_bytes: 24_000_000_000,
        };
        let s = format!("{e}");
        assert!(s.contains("llm/Vicuna-13B"));
        assert!(s.contains("partitioning"));
        assert!(format!("{}", CoreError::EmptyFleet).contains("no devices"));
    }
}
