//! Intra-module partitioning fallback (Sec. V-B).
//!
//! > "If the module cannot be loaded on any devices, we can further apply
//! > compression or DNN/LLM partitioning techniques to make the modules
//! > more lightweight. After leveraging such techniques, we can search
//! > the devices for partitioned modules using our greedy placement."
//!
//! This module implements that escape hatch: a module that fits nowhere
//! (e.g. Vicuna-13B, 26 GB fp16, on an edge fleet whose largest budget is
//! 24 GB) is split into `k` pipeline shards of `1/k` the weights, placed
//! individually by the same greedy rule. A single request then traverses
//! the shards *sequentially* (pipeline stages), paying an inter-stage hop
//! for every activation handoff — which is exactly the transmission
//! overhead the paper attributes to intra-module approaches (Sec. II),
//! now quantifiable.

use s2m3_models::module::{ModuleId, ModuleKind, ModuleSpec};
use s2m3_net::device::DeviceId;

use crate::error::CoreError;
use crate::problem::{Instance, Placement, RequestProfile};
use crate::resolved::ResolvedInstance;

/// Maximum shards to try before declaring the instance hopeless.
pub const MAX_SHARDS: usize = 8;

/// Pipeline hops per processed work unit for a sharded *generative* module
/// (autoregressive decode ping-pongs activations between stages every
/// token); encoder shards hand off once per stage instead.
fn hops_per_unit(kind: ModuleKind) -> f64 {
    match kind {
        ModuleKind::LanguageModel => 1.0,
        _ => 0.0,
    }
}

/// Splits `module` into `k` pipeline shards.
///
/// Weights, FLOPs and activation footprints divide evenly; shard ids are
/// `"{base}#{i}/{k}"` so they remain stable sharing keys (two models
/// sharing a sharded LLM share every shard).
pub fn shard_module(module: &ModuleSpec, k: usize) -> Vec<ModuleSpec> {
    assert!(k >= 1, "shard count must be positive");
    (0..k)
        .map(|i| {
            let mut s = module.clone();
            s.id = ModuleId::new(format!("{}#{}/{}", module.id, i + 1, k));
            s.params = module.params / k as u64;
            s.gflops_per_unit = module.gflops_per_unit / k as f64;
            s
        })
        .collect()
}

/// One sharded module's placement: shards in pipeline order with their
/// devices.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// The original (unsharded) module.
    pub base: ModuleSpec,
    /// Pipeline stages with their assigned devices, in order.
    pub stages: Vec<(ModuleSpec, DeviceId)>,
}

impl ShardPlan {
    /// Number of pipeline stages.
    pub fn shard_count(&self) -> usize {
        self.stages.len()
    }

    /// End-to-end time for this sharded module to process one request
    /// under `profile`: sum of stage compute plus inter-stage activation
    /// hops (per token for generative modules).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDevice`] if a stage device left the fleet.
    pub fn pipeline_latency(
        &self,
        instance: &Instance,
        profile: &RequestProfile,
    ) -> Result<f64, CoreError> {
        let units = profile.units(self.base.kind);
        let mut total = 0.0;
        for (shard, device) in &self.stages {
            total += instance.compute_time_for(shard, device, profile)?;
        }
        // Activation handoffs between consecutive stages.
        let act_bytes = (self.base.embed_dim.max(64) * 4) as u64;
        let per_unit = hops_per_unit(self.base.kind);
        for w in self.stages.windows(2) {
            let hop = instance
                .fleet()
                .topology()
                .transfer_time(&w[0].1, &w[1].1, act_bytes)
                .map_err(CoreError::UnknownDevice)?;
            // One traversal always happens; generative modules repeat it
            // per decoded unit.
            total += hop * (1.0 + per_unit * (units - 1.0).max(0.0));
        }
        Ok(total)
    }
}

/// Result of placement-with-partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedPlacement {
    /// Placement of all modules that fit whole.
    pub placement: Placement,
    /// Sharded modules (empty when everything fit).
    pub sharded: Vec<ShardPlan>,
}

impl PartitionedPlacement {
    /// Whether partitioning was needed at all.
    pub fn any_sharded(&self) -> bool {
        !self.sharded.is_empty()
    }
}

/// Greedy placement with the Sec. V-B partitioning fallback: modules that
/// fit nowhere are split into 2, 3, … [`MAX_SHARDS`] pipeline shards until
/// every shard finds a device.
///
/// Shards are placed by the same completion-time rule as whole modules,
/// consecutive stages preferring low-latency pairs (each stage is scored
/// like a head: pure compute, Eq. 6 — stages never run in parallel with
/// one another).
///
/// # Errors
///
/// [`CoreError::Infeasible`] when even [`MAX_SHARDS`]-way sharding cannot
/// fit; [`CoreError::EmptyFleet`] on an empty fleet.
pub fn greedy_place_partitioned(instance: &Instance) -> Result<PartitionedPlacement, CoreError> {
    let resolved = ResolvedInstance::new(instance)?;
    let nd = resolved.device_count();

    // Classify modules: those that fit on at least one device go to the
    // ordinary greedy; the rest get sharded.
    let max_budget = (0..nd as u32)
        .map(|d| resolved.device_budget(d))
        .max()
        .unwrap_or(0);
    let (fitting, oversized): (Vec<u32>, Vec<u32>) =
        (0..resolved.module_count() as u32).partition(|&m| resolved.module_memory(m) <= max_budget);

    // Place the fitting modules with the shared greedy scoring loop
    // (Eqs. 5/6 in `placement::place_modules_resolved`), restricted to
    // this explicit module list.
    let mut remaining: Vec<u64> = (0..nd as u32).map(|d| resolved.device_budget(d)).collect();
    let mut placement = Placement::new();
    crate::placement::place_modules_resolved(&resolved, fitting, &mut remaining, &mut placement)?;

    // Shard the oversized modules, smallest shard count that fits. Shard
    // specs are synthesized on the fly (they are not interned), so this
    // cold fallback scores through the string-id API.
    let devices = instance.fleet().devices();
    let mut sharded = Vec::new();
    for mi in oversized {
        let m = resolved.module_spec(mi);
        let mut placed_plan: Option<ShardPlan> = None;
        'shards: for k in 2..=MAX_SHARDS {
            let shards = shard_module(m, k);
            // Tentative: place each shard on the fastest device with room
            // (pure compute score — stages are sequential).
            let mut trial_remaining = remaining.clone();
            let mut stages = Vec::with_capacity(k);
            for shard in &shards {
                let units = instance.placement_units(shard);
                let mut scored: Vec<(f64, u32)> = Vec::with_capacity(nd);
                for (di, d) in devices.iter().enumerate() {
                    scored.push((d.compute_time(shard, units), di as u32));
                }
                scored.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| resolved.device_rank(a.1).cmp(&resolved.device_rank(b.1)))
                });
                let need = shard.memory_bytes();
                let Some(&(_, n)) = scored
                    .iter()
                    .find(|&&(_, n)| need <= trial_remaining[n as usize])
                else {
                    continue 'shards;
                };
                trial_remaining[n as usize] -= need;
                stages.push((shard.clone(), resolved.device_name(n).clone()));
            }
            remaining = trial_remaining;
            placed_plan = Some(ShardPlan {
                base: m.clone(),
                stages,
            });
            break;
        }
        match placed_plan {
            Some(plan) => {
                for (shard, dev) in &plan.stages {
                    placement.place(shard.id.clone(), dev.clone());
                }
                sharded.push(plan);
            }
            None => {
                return Err(CoreError::Infeasible {
                    module: resolved.module_name(mi).clone(),
                    required_bytes: resolved.module_memory(mi) / MAX_SHARDS as u64,
                    best_remaining_bytes: remaining.iter().copied().max().unwrap_or(0),
                });
            }
        }
    }

    Ok(PartitionedPlacement { placement, sharded })
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_net::fleet::Fleet;

    #[test]
    fn sharding_divides_weights_and_flops() {
        let i = Instance::single_model("LLaVA-v1.5-13B", 1).unwrap();
        let llm = i
            .distinct_modules()
            .into_iter()
            .find(|m| m.kind == ModuleKind::LanguageModel)
            .unwrap()
            .clone();
        let shards = shard_module(&llm, 4);
        assert_eq!(shards.len(), 4);
        for s in &shards {
            assert_eq!(s.params, llm.params / 4);
            assert!((s.gflops_per_unit - llm.gflops_per_unit / 4.0).abs() < 1e-9);
            assert!(s.id.as_str().contains('#'));
        }
        // Shard ids are distinct and deterministic.
        assert_ne!(shards[0].id, shards[1].id);
        assert_eq!(shard_module(&llm, 4)[2], shards[2]);
    }

    #[test]
    fn vicuna_13b_infeasible_whole_but_placeable_sharded() {
        // 26 GB fp16 exceeds every edge budget (desktop: 24 GB)...
        let i = Instance::single_model("LLaVA-v1.5-13B", 1).unwrap();
        assert!(matches!(
            crate::placement::greedy_place(&i),
            Err(CoreError::Infeasible { .. })
        ));
        // ...but the partitioning fallback shards it across devices.
        let pp = greedy_place_partitioned(&i).unwrap();
        assert!(pp.any_sharded());
        let plan = &pp.sharded[0];
        assert!(plan.base.id.as_str().contains("Vicuna-13B"));
        assert!(plan.shard_count() >= 2);
        // Stages span more than one device (no single device holds it).
        let devices: std::collections::BTreeSet<_> =
            plan.stages.iter().map(|(_, d)| d.clone()).collect();
        assert!(devices.len() >= 2, "stages on {devices:?}");
    }

    #[test]
    fn pipeline_latency_includes_per_token_hops() {
        let i = Instance::single_model("LLaVA-v1.5-13B", 1).unwrap();
        let pp = greedy_place_partitioned(&i).unwrap();
        let profile = i.deployments()[0].profile;
        let plan = &pp.sharded[0];
        let latency = plan.pipeline_latency(&i, &profile).unwrap();
        // Compute alone on the fastest single device would be:
        let whole = i
            .compute_time_for(&plan.base, &"laptop".into(), &profile)
            .unwrap_or(f64::INFINITY)
            .min(
                i.compute_time_for(&plan.base, &"desktop".into(), &profile)
                    .unwrap(),
            );
        // The pipeline pays hop overhead: strictly more than ideal
        // sharded compute, and more than a (hypothetical) whole placement
        // minus overheads would be.
        assert!(
            latency > 0.8 * whole,
            "latency {latency:.2} vs whole {whole:.2}"
        );
        // Per-token ping-pong across Wi-Fi should be visible (>0.3 s for
        // 128 tokens over multi-ms paths) whenever stages span devices.
        let spans_devices = plan.stages.windows(2).any(|w| w[0].1 != w[1].1);
        if spans_devices {
            assert!(
                latency > whole,
                "hops must add cost: {latency:.2} vs {whole:.2}"
            );
        }
    }

    #[test]
    fn no_sharding_when_everything_fits() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let pp = greedy_place_partitioned(&i).unwrap();
        assert!(!pp.any_sharded());
        assert_eq!(pp.placement.modules().count(), i.distinct_modules().len());
    }

    #[test]
    fn hopeless_instances_still_error() {
        // Two Jetsons (1.1 GB each): even 8-way Vicuna-13B shards
        // (3.25 GB each) cannot fit.
        let fleet = Fleet::standard_testbed()
            .restricted_to(&["jetson-a", "jetson-b"])
            .unwrap();
        let i = Instance::on_fleet(fleet, &[("LLaVA-v1.5-13B", 1)]).unwrap();
        assert!(matches!(
            greedy_place_partitioned(&i),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn sharded_placement_respects_memory() {
        let i = Instance::single_model("LLaVA-v1.5-13B", 1).unwrap();
        let pp = greedy_place_partitioned(&i).unwrap();
        // Validate budgets manually (validate() uses distinct_modules,
        // which does not know shard specs).
        let mut used: std::collections::BTreeMap<&str, u64> = Default::default();
        let specs: Vec<_> = i.distinct_modules().into_iter().cloned().collect();
        for (m, d) in pp.placement.iter() {
            let bytes = specs
                .iter()
                .find(|s| &s.id == m)
                .map(|s| s.memory_bytes())
                .or_else(|| {
                    pp.sharded
                        .iter()
                        .flat_map(|sp| &sp.stages)
                        .find_map(|(s, _)| (&s.id == m).then(|| s.memory_bytes()))
                })
                .unwrap();
            *used.entry(d.as_str()).or_default() += bytes;
        }
        for d in i.fleet().devices() {
            if let Some(bytes) = used.get(d.id.as_str()) {
                assert!(
                    *bytes <= d.usable_memory_bytes(),
                    "{}: {bytes} > {}",
                    d.id,
                    d.usable_memory_bytes()
                );
            }
        }
    }
}
