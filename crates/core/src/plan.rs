//! A complete executable plan: placement plus per-request routes.
//!
//! Plans are the hand-off between the core algorithms and the execution
//! substrates (`s2m3-sim` replays them in virtual time; `s2m3-runtime`
//! executes them with real computation).

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::objective::validate;
use crate::placement::{greedy_place_with, PlacementOptions};
use crate::problem::{Instance, Placement, Request, Route};
use crate::routing::route_request;

/// Placement + routed requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// The module placement `x`.
    pub placement: Placement,
    /// Requests with their routes `y^q`, in arrival order.
    pub routed: Vec<(Request, Route)>,
}

impl Plan {
    /// Builds a plan: greedy placement, then Eq. 7 routing per request.
    /// The result is validated against constraints (4b)–(4d).
    ///
    /// # Errors
    ///
    /// Placement/routing/validation errors as typed [`CoreError`]s.
    pub fn greedy(instance: &Instance, requests: Vec<Request>) -> Result<Self, CoreError> {
        Self::greedy_with(instance, requests, PlacementOptions::default())
    }

    /// Builds a greedy plan with explicit placement options.
    ///
    /// # Errors
    ///
    /// See [`Plan::greedy`].
    pub fn greedy_with(
        instance: &Instance,
        requests: Vec<Request>,
        opts: PlacementOptions,
    ) -> Result<Self, CoreError> {
        let placement = greedy_place_with(instance, opts)?;
        Self::route_all(instance, placement, requests)
    }

    /// Routes `requests` over an existing placement and validates.
    ///
    /// # Errors
    ///
    /// See [`Plan::greedy`].
    pub fn route_all(
        instance: &Instance,
        placement: Placement,
        requests: Vec<Request>,
    ) -> Result<Self, CoreError> {
        let mut routed = Vec::with_capacity(requests.len());
        for q in requests {
            let r = route_request(instance, &placement, &q)?;
            routed.push((q, r));
        }
        validate(instance, &placement, &routed)?;
        Ok(Plan { placement, routed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_net::fleet::Fleet;

    #[test]
    fn greedy_plan_roundtrip() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let q = i.request(0, "CLIP ViT-B/16").unwrap();
        let plan = Plan::greedy(&i, vec![q]).unwrap();
        assert_eq!(plan.routed.len(), 1);
        assert_eq!(plan.placement.len(), 3);
    }

    #[test]
    fn multi_request_multi_task_plan() {
        let i = Instance::on_fleet(
            Fleet::edge_testbed(),
            &[
                ("CLIP ViT-B/16", 101),
                ("Encoder-only VQA (Small)", 1),
                ("AlignBind-B", 16),
                ("CLIP-Classifier Food-101", 0),
            ],
        )
        .unwrap();
        let requests: Vec<_> = i
            .deployments()
            .iter()
            .enumerate()
            .map(|(n, d)| i.request(n as u64, &d.model.name).unwrap())
            .collect();
        let plan = Plan::greedy(&i, requests).unwrap();
        assert_eq!(plan.routed.len(), 4);
    }

    #[test]
    fn plan_serializes() {
        let i = Instance::single_model("CLIP ViT-B/16", 10).unwrap();
        let q = i.request(0, "CLIP ViT-B/16").unwrap();
        let plan = Plan::greedy(&i, vec![q]).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: Plan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
