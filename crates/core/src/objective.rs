//! The analytic objective — exact evaluation of Eqs. (1)–(3) — and the
//! constraint checker for (4b)–(4e).

use std::collections::BTreeMap;

use s2m3_models::module::ModuleKind;
use s2m3_net::device::DeviceId;

use crate::error::CoreError;
use crate::problem::{Instance, Placement, Request, Route};
use crate::routing::head_assignment;

fn comm(instance: &Instance, from: &DeviceId, to: &DeviceId, bytes: u64) -> Result<f64, CoreError> {
    instance
        .fleet()
        .topology()
        .transfer_time(from, to, bytes)
        .map_err(CoreError::UnknownDevice)
}

/// Per-encoder latency terms of Eq. (2): input transfer, computation, and
/// output transfer to the head device. Returned per module for timeline
/// rendering; `t_enc` is their max.
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderPath {
    /// Encoder module id.
    pub module: s2m3_models::module::ModuleId,
    /// Device executing it.
    pub device: DeviceId,
    /// `t_comm(m, n_q, n)` — raw input transfer, seconds.
    pub input_tx: f64,
    /// `t_comp(m, n)`, seconds.
    pub compute: f64,
    /// `t_comm(h, n, n')` — embedding transfer to the head, seconds.
    pub output_tx: f64,
}

impl EncoderPath {
    /// End-to-end length of this encoder path.
    pub fn total(&self) -> f64 {
        self.input_tx + self.compute + self.output_tx
    }
}

/// Computes every encoder path of a routed request.
///
/// # Errors
///
/// [`CoreError`] variants on unknown models/devices or unrouted modules.
pub fn encoder_paths(
    instance: &Instance,
    route: &Route,
    request: &Request,
) -> Result<Vec<EncoderPath>, CoreError> {
    let deployment = instance
        .deployment(&request.model)
        .ok_or_else(|| CoreError::UnknownModel(request.model.clone()))?;
    let (_, head_dev) = head_assignment(instance, route, request)?;
    let mut paths = Vec::new();
    for m in deployment.model.encoders() {
        let n = route
            .device_for(&m.id)
            .ok_or_else(|| CoreError::Unrouted(m.id.clone()))?;
        let units = request.profile.units(m.kind);
        let input_tx = comm(
            instance,
            &request.source,
            n,
            request.profile.input_bytes(m.kind),
        )?;
        let compute = instance.compute_time_for(m, n, &request.profile)?;
        let output_tx = comm(instance, n, &head_dev, m.output_bytes(units))?;
        paths.push(EncoderPath {
            module: m.id.clone(),
            device: n.clone(),
            input_tx,
            compute,
            output_tx,
        });
    }
    Ok(paths)
}

/// Encoder latency `t_enc` (Eq. 2): the **max** over parallel encoder
/// paths, plus — for generative heads — the raw-query transfer to the
/// head device, which travels concurrently with the encoders.
///
/// Refinement over the paper's closed form: encoders of the *same*
/// request routed to the *same* device cannot actually overlap beyond the
/// device's `parallelism`, so co-located paths are scheduled onto lanes
/// (longest compute first, matching the dispatch rule) rather than
/// treated as free parallelism. On distinct devices this reduces exactly
/// to Eq. 2's max.
///
/// # Errors
///
/// See [`encoder_paths`].
pub fn encoder_latency(
    instance: &Instance,
    route: &Route,
    request: &Request,
) -> Result<f64, CoreError> {
    let paths = encoder_paths(instance, route, request)?;

    // Group paths by executing device and lane-schedule each group.
    let mut by_device: BTreeMap<&DeviceId, Vec<&EncoderPath>> = BTreeMap::new();
    for p in &paths {
        by_device.entry(&p.device).or_default().push(p);
    }
    let mut t = 0.0_f64;
    for (dev, mut group) in by_device {
        let lanes_n = instance.device(dev)?.parallelism.max(1);
        // Longest compute dispatched first (Algorithm 1's send order).
        group.sort_by(|a, b| {
            b.compute
                .partial_cmp(&a.compute)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.module.cmp(&b.module))
        });
        let mut lanes = vec![0.0_f64; lanes_n];
        for p in group {
            // Earliest-free lane; execution cannot begin before the input
            // arrives.
            let (idx, _) = lanes
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("at least one lane");
            let start = lanes[idx].max(p.input_tx);
            let done = start + p.compute;
            lanes[idx] = done;
            t = t.max(done + p.output_tx);
        }
    }
    let (head, head_dev) = head_assignment(instance, route, request)?;
    if head.kind == ModuleKind::LanguageModel {
        let q_tx = comm(
            instance,
            &request.source,
            &head_dev,
            request.profile.input_bytes(ModuleKind::LanguageModel),
        )?;
        t = t.max(q_tx);
    }
    Ok(t)
}

/// Sequential-encoder latency: the **sum** of encoder paths instead of
/// the max — the "S2M3 w/o Parallel Processing" ablation of Table VII.
///
/// # Errors
///
/// See [`encoder_paths`].
pub fn encoder_latency_sequential(
    instance: &Instance,
    route: &Route,
    request: &Request,
) -> Result<f64, CoreError> {
    Ok(encoder_paths(instance, route, request)?
        .iter()
        .map(EncoderPath::total)
        .sum())
}

/// Head latency `t_head` (Eq. 3).
///
/// # Errors
///
/// See [`encoder_paths`].
pub fn head_latency(
    instance: &Instance,
    route: &Route,
    request: &Request,
) -> Result<f64, CoreError> {
    let (head, dev) = head_assignment(instance, route, request)?;
    instance.compute_time_for(head, &dev, &request.profile)
}

/// End-to-end latency `t_total` (Eq. 1).
///
/// # Errors
///
/// See [`encoder_paths`].
pub fn total_latency(
    instance: &Instance,
    route: &Route,
    request: &Request,
) -> Result<f64, CoreError> {
    Ok(encoder_latency(instance, route, request)? + head_latency(instance, route, request)?)
}

/// End-to-end latency without parallel processing (ablation).
///
/// # Errors
///
/// See [`encoder_paths`].
pub fn total_latency_sequential(
    instance: &Instance,
    route: &Route,
    request: &Request,
) -> Result<f64, CoreError> {
    Ok(encoder_latency_sequential(instance, route, request)?
        + head_latency(instance, route, request)?)
}

/// Validates constraints (4b)–(4e) for a placement and a set of routed
/// requests:
///
/// - (4b) every routed module is on a hosting device;
/// - (4c) every module a request requires is routed exactly once;
/// - (4d) per-device placed memory stays within `R_n`.
///
/// (4e) — binary variables — holds by construction of the types. The
/// capacity term `a_{m,n}` of (4b) bounds *concurrent batch* admission and
/// is enforced dynamically by the simulator's queues rather than here.
///
/// # Errors
///
/// The first violated constraint, as a typed [`CoreError`].
pub fn validate(
    instance: &Instance,
    placement: &Placement,
    routed: &[(Request, Route)],
) -> Result<(), CoreError> {
    // (4d) memory budgets.
    let specs: BTreeMap<_, _> = instance
        .distinct_modules()
        .into_iter()
        .map(|m| (m.id.clone(), m))
        .collect();
    let mut used: BTreeMap<DeviceId, u64> = BTreeMap::new();
    for (m, n) in placement.iter() {
        if let Some(spec) = specs.get(m) {
            *used.entry(n.clone()).or_default() += spec.memory_bytes();
        }
    }
    for (n, bytes) in &used {
        let budget = instance.device(n)?.usable_memory_bytes();
        if *bytes > budget {
            return Err(CoreError::OverCapacity {
                device: n.clone(),
                placed_bytes: *bytes,
                budget_bytes: budget,
            });
        }
    }

    // (4b) + (4c) per request.
    for (request, route) in routed {
        let deployment = instance
            .deployment(&request.model)
            .ok_or_else(|| CoreError::UnknownModel(request.model.clone()))?;
        for m in deployment.model.modules() {
            let n = route
                .device_for(&m.id)
                .ok_or_else(|| CoreError::Unrouted(m.id.clone()))?;
            if !placement.is_placed(&m.id, n) {
                return Err(CoreError::NotHosted {
                    module: m.id.clone(),
                    device: n.clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::greedy_place;
    use crate::routing::route_request;

    fn setup(name: &str, candidates: usize) -> (Instance, Placement, Request, Route) {
        let i = Instance::single_model(name, candidates).unwrap();
        let p = greedy_place(&i).unwrap();
        let q = i.request(0, name).unwrap();
        let r = route_request(&i, &p, &q).unwrap();
        (i, p, q, r)
    }

    #[test]
    fn total_is_enc_plus_head() {
        let (i, _, q, r) = setup("CLIP ViT-B/16", 101);
        let total = total_latency(&i, &r, &q).unwrap();
        let enc = encoder_latency(&i, &r, &q).unwrap();
        let head = head_latency(&i, &r, &q).unwrap();
        assert!((total - (enc + head)).abs() < 1e-12);
        assert!(enc > 0.0 && head > 0.0);
    }

    #[test]
    fn parallel_never_slower_than_sequential() {
        let (i, _, q, r) = setup("CLIP ViT-B/16", 101);
        let par = total_latency(&i, &r, &q).unwrap();
        let seq = total_latency_sequential(&i, &r, &q).unwrap();
        assert!(par <= seq + 1e-12);
        assert!(
            seq - par > 0.05,
            "two-encoder model must gain from parallelism"
        );
    }

    #[test]
    fn single_encoder_models_gain_nothing_from_parallelism() {
        let (i, _, q, r) = setup("CLIP-Classifier Food-101", 0);
        let par = total_latency(&i, &r, &q).unwrap();
        let seq = total_latency_sequential(&i, &r, &q).unwrap();
        assert!((par - seq).abs() < 1e-12);
    }

    #[test]
    fn communication_is_negligible_next_to_compute() {
        // Fig. 3's observation, reproduced rather than assumed.
        let (i, _, q, r) = setup("CLIP ViT-B/16", 101);
        let paths = encoder_paths(&i, &r, &q).unwrap();
        for p in &paths {
            assert!(p.input_tx + p.output_tx < 0.3 * p.compute.max(0.3), "{p:?}");
        }
    }

    #[test]
    fn edge_s2m3_latency_in_paper_regime() {
        // Table VII: S2M3 on the edge fleet ≈ 2.48 s for CLIP ViT-B/16
        // with 101 Food-101 prompts. Accept the right regime.
        let (i, _, q, r) = setup("CLIP ViT-B/16", 101);
        let t = total_latency(&i, &r, &q).unwrap();
        assert!((1.8..3.2).contains(&t), "S2M3 edge latency {t:.2} s");
    }

    #[test]
    fn validate_accepts_greedy_and_rejects_corruptions() {
        let (i, p, q, r) = setup("CLIP ViT-B/16", 101);
        validate(&i, &p, &[(q.clone(), r.clone())]).unwrap();

        // Route to a non-hosting device → NotHosted.
        let mut bad = r;
        let vision = "vision/ViT-B-16".into();
        let wrong: DeviceId = if p.is_placed(&vision, &"jetson-b".into()) {
            "jetson-a".into()
        } else {
            "jetson-b".into()
        };
        bad.assign(vision, wrong);
        assert!(matches!(
            validate(&i, &p, &[(q.clone(), bad)]),
            Err(CoreError::NotHosted { .. })
        ));

        // Missing module → Unrouted.
        let mut partial = Route::new(q.id);
        partial.assign(
            "head/cosine".into(),
            p.hosts(&"head/cosine".into()).next().unwrap().clone(),
        );
        assert!(matches!(
            validate(&i, &p, &[(q, partial)]),
            Err(CoreError::Unrouted(_))
        ));
    }

    #[test]
    fn validate_catches_memory_violation() {
        let i = Instance::single_model("LLaVA-v1.5-13B", 1).unwrap();
        let mut p = Placement::new();
        // Cram everything onto a Jetson: 26 GB of Vicuna-13B in 1.1 GB.
        for m in i.distinct_modules() {
            p.place(m.id.clone(), "jetson-a".into());
        }
        assert!(matches!(
            validate(&i, &p, &[]),
            Err(CoreError::OverCapacity { .. })
        ));
    }

    #[test]
    fn decoder_vqa_includes_query_transfer() {
        let (i, _, q, r) = setup("Flint-v0.5-1B", 1);
        // The query transfer is tiny but must not panic and must keep
        // t_enc at least as large as the raw-query path.
        let enc = encoder_latency(&i, &r, &q).unwrap();
        assert!(enc > 0.0);
    }
}
