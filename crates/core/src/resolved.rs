//! Interned-index view of an [`Instance`]: the hot-path data layer.
//!
//! Every hot loop in the reproduction — greedy placement, the Sec. V-C
//! brute-force Upper bound, Eq. 1–4 objective evaluation, and both
//! discrete-event engines — needs `t_comp(m, n)`, `t_comm(a, b, bytes)`,
//! memory footprints, and adjacency for (module, device) pairs. Keying
//! those lookups by `DeviceId(String)` / `ModuleId(String)` makes string
//! hashing/ordering the dominant cost per event. [`ResolvedInstance`]
//! interns both id spaces into dense `u32` indices at construction time
//! and precomputes flat tables, so the hot loops do array arithmetic
//! only.
//!
//! ## String at the boundary, index in the core
//!
//! Public artifacts (`Plan`, `SimReport`, `ServeReport`) keep string ids
//! and serialize exactly as before; [`ResolvedInstance::device_name`] /
//! [`ResolvedInstance::module_name`] translate back at the boundary.
//! Nothing about the *numerical* behavior changes either: every table
//! stores the same operands the string path used and evaluates the same
//! formula in the same order, so results are bitwise identical (the
//! equivalence tests in `tests/equivalence.rs` pin this against golden
//! pre-refactor outputs).
//!
//! ## Index spaces
//!
//! - **Devices** are numbered in fleet order (`Fleet::devices()`), which
//!   is *not* lexicographic. Algorithms that tie-break on device *name*
//!   (placement Eq. 5/6, routing Eq. 7) must compare
//!   [`ResolvedInstance::device_rank`], not raw indices.
//! - **Modules** are numbered in `Instance::distinct_modules()` order,
//!   which *is* sorted by id — module-index order and module-id order
//!   coincide, so index comparisons replace id comparisons directly.

use std::collections::BTreeMap;

use s2m3_models::module::{ModuleId, ModuleKind, ModuleSpec};
use s2m3_net::device::DeviceId;
use s2m3_net::link::LinkSpec;

use crate::error::CoreError;
use crate::problem::{Instance, Placement, RequestProfile, Route};

/// Upper bound on encoders per model / lanes per device that the
/// zero-allocation objective path handles on the stack. The standard
/// zoo tops out at 3 encoders (vision + text + audio) and 2 lanes.
const MAX_FANOUT: usize = 8;

/// One deployed model with its module references interned.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedModel {
    /// Model name (`k`), kept for boundary lookups.
    pub name: String,
    /// Encoder module indices, in `ModelSpec::encoders()` order.
    pub encoders: Vec<u32>,
    /// Head module index.
    pub head: u32,
    /// The deployment's canonical request profile.
    pub profile: RequestProfile,
}

/// A dense-index mirror of an [`Instance`]: interned device/module ids
/// plus flat per-(module, device) compute tables, per-(device, device)
/// links, per-module memory, and per-deployment module adjacency.
///
/// Build once per instance (or per fleet change) with
/// [`ResolvedInstance::new`]; all accessors are then branch-light array
/// reads. See the [module docs](self) for the index-space conventions.
#[derive(Debug, Clone)]
pub struct ResolvedInstance {
    device_names: Vec<DeviceId>,
    module_names: Vec<ModuleId>,
    device_rank: Vec<u32>,
    module_specs: Vec<ModuleSpec>,
    module_kinds: Vec<ModuleKind>,
    module_memory: Vec<u64>,
    module_gflops: Vec<f64>,
    device_budget: Vec<u64>,
    device_parallelism: Vec<usize>,
    exec_overhead: Vec<f64>,
    unit_overhead: Vec<f64>,
    /// `speed_gflops · efficiency(kind)`, row-major `[module][device]`.
    speed_eff: Vec<f64>,
    /// `t_comp(m, n)` at placement-time units, row-major `[module][device]`.
    placement_compute: Vec<f64>,
    /// End-to-end path specs, row-major `[from][to]`.
    links: Vec<LinkSpec>,
    requester: u32,
    models: Vec<ResolvedModel>,
}

impl ResolvedInstance {
    /// Interns `instance` into dense indices and precomputes the flat
    /// tables.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyFleet`] on an empty fleet.
    pub fn new(instance: &Instance) -> Result<Self, CoreError> {
        let devices = instance.fleet().devices();
        if devices.is_empty() {
            return Err(CoreError::EmptyFleet);
        }
        let device_names: Vec<DeviceId> = devices.iter().map(|d| d.id.clone()).collect();
        // Lexicographic rank per device index, for name-order tie-breaks.
        let device_rank = {
            let mut order: Vec<u32> = (0..device_names.len() as u32).collect();
            order.sort_by(|&a, &b| device_names[a as usize].cmp(&device_names[b as usize]));
            let mut rank = vec![0u32; device_names.len()];
            for (r, &d) in order.iter().enumerate() {
                rank[d as usize] = r as u32;
            }
            rank
        };

        // `distinct_modules` iterates a BTreeMap, so index order == sorted
        // id order (the invariant the objective's tie-breaks rely on).
        let module_specs: Vec<ModuleSpec> =
            instance.distinct_modules().into_iter().cloned().collect();
        let module_names: Vec<ModuleId> = module_specs.iter().map(|m| m.id.clone()).collect();
        let module_index: BTreeMap<&ModuleId, u32> = module_names
            .iter()
            .enumerate()
            .map(|(i, m)| (m, i as u32))
            .collect();
        let module_kinds: Vec<ModuleKind> = module_specs.iter().map(|m| m.kind).collect();
        let module_memory: Vec<u64> = module_specs.iter().map(|m| m.memory_bytes()).collect();
        let module_gflops: Vec<f64> = module_specs.iter().map(|m| m.gflops_per_unit).collect();

        let nd = devices.len();
        let nm = module_specs.len();
        let mut speed_eff = vec![0.0; nm * nd];
        let mut placement_compute = vec![0.0; nm * nd];
        for (mi, m) in module_specs.iter().enumerate() {
            let units = instance.placement_units(m);
            for (di, d) in devices.iter().enumerate() {
                speed_eff[mi * nd + di] = d.speed_gflops * d.efficiency.factor(m.kind);
                placement_compute[mi * nd + di] = d.compute_time(m, units);
            }
        }

        let topology = instance.fleet().topology();
        let mut links = vec![LinkSpec::loopback(); nd * nd];
        for (ai, a) in device_names.iter().enumerate() {
            for (bi, b) in device_names.iter().enumerate() {
                links[ai * nd + bi] = topology.path(a, b).map_err(CoreError::UnknownDevice)?;
            }
        }

        let requester = device_names
            .iter()
            .position(|d| d == instance.fleet().requester())
            .ok_or_else(|| CoreError::UnknownDevice(instance.fleet().requester().clone()))?
            as u32;

        let models = instance
            .deployments()
            .iter()
            .map(|dep| ResolvedModel {
                name: dep.model.name.clone(),
                encoders: dep
                    .model
                    .encoders()
                    .iter()
                    .map(|m| module_index[&m.id])
                    .collect(),
                head: module_index[&dep.model.head().id],
                profile: dep.profile,
            })
            .collect();

        Ok(ResolvedInstance {
            device_names,
            module_names,
            device_rank,
            module_specs,
            module_kinds,
            module_memory,
            module_gflops,
            device_budget: devices.iter().map(|d| d.usable_memory_bytes()).collect(),
            device_parallelism: devices.iter().map(|d| d.parallelism.max(1)).collect(),
            exec_overhead: devices.iter().map(|d| d.exec_overhead_s).collect(),
            unit_overhead: devices.iter().map(|d| d.unit_overhead_s).collect(),
            speed_eff,
            placement_compute,
            links,
            requester,
            models,
        })
    }

    /// Number of interned devices.
    pub fn device_count(&self) -> usize {
        self.device_names.len()
    }

    /// Number of interned distinct modules.
    pub fn module_count(&self) -> usize {
        self.module_names.len()
    }

    /// The string id of device `d` (boundary translation).
    pub fn device_name(&self, d: u32) -> &DeviceId {
        &self.device_names[d as usize]
    }

    /// The string id of module `m` (boundary translation).
    pub fn module_name(&self, m: u32) -> &ModuleId {
        &self.module_names[m as usize]
    }

    /// Interns a device id, `None` if outside the fleet.
    pub fn device_index(&self, id: &DeviceId) -> Option<u32> {
        self.device_names
            .iter()
            .position(|d| d == id)
            .map(|i| i as u32)
    }

    /// Interns a module id, `None` if not deployed here.
    pub fn module_index(&self, id: &ModuleId) -> Option<u32> {
        // Module names are sorted (BTreeMap order), so binary search.
        self.module_names
            .binary_search_by(|m| m.cmp(id))
            .ok()
            .map(|i| i as u32)
    }

    /// Lexicographic rank of device `d` among the fleet's names — the
    /// comparison key for every "smaller device id wins" tie-break.
    pub fn device_rank(&self, d: u32) -> u32 {
        self.device_rank[d as usize]
    }

    /// The full spec of module `m`.
    pub fn module_spec(&self, m: u32) -> &ModuleSpec {
        &self.module_specs[m as usize]
    }

    /// The functional kind of module `m`.
    pub fn module_kind(&self, m: u32) -> ModuleKind {
        self.module_kinds[m as usize]
    }

    /// Resident memory requirement `r_m` of module `m`, bytes.
    pub fn module_memory(&self, m: u32) -> u64 {
        self.module_memory[m as usize]
    }

    /// Memory budget `R_n` of device `d`, bytes.
    pub fn device_budget(&self, d: u32) -> u64 {
        self.device_budget[d as usize]
    }

    /// Concurrent execution lanes of device `d` (≥ 1).
    pub fn parallelism(&self, d: u32) -> usize {
        self.device_parallelism[d as usize]
    }

    /// The request-originating device `n_q`.
    pub fn requester(&self) -> u32 {
        self.requester
    }

    /// Deployed models with interned module references, in
    /// `Instance::deployments()` order.
    pub fn models(&self) -> &[ResolvedModel] {
        &self.models
    }

    /// Index of a deployed model by name.
    pub fn model_index(&self, name: &str) -> Option<usize> {
        self.models.iter().position(|m| m.name == name)
    }

    /// `t_comp(m, n, units)` — same formula and operation order as
    /// [`s2m3_net::device::DeviceSpec::compute_time`], so the result is
    /// bitwise identical to the string path.
    #[inline]
    pub fn compute_time_units(&self, m: u32, d: u32, units: f64) -> f64 {
        let nd = self.device_names.len();
        let cell = m as usize * nd + d as usize;
        self.exec_overhead[d as usize]
            + self.unit_overhead[d as usize] * units
            + (self.module_gflops[m as usize] * units) / self.speed_eff[cell]
    }

    /// `t_comp(m, n)` at placement-time units (Eqs. 5/6 scoring).
    #[inline]
    pub fn placement_compute(&self, m: u32, d: u32) -> f64 {
        self.placement_compute[m as usize * self.device_names.len() + d as usize]
    }

    /// Seconds to move `bytes` from device `a` to device `b`.
    #[inline]
    pub fn transfer_time(&self, a: u32, b: u32, bytes: u64) -> f64 {
        self.links[a as usize * self.device_names.len() + b as usize].transfer_time(bytes)
    }

    /// Interns a [`Placement`] into per-module host lists. Hosts outside
    /// this instance's fleet (e.g. departed devices) are dropped, exactly
    /// as the string-path routing never offers them.
    pub fn resolve_placement(&self, placement: &Placement) -> Vec<Vec<u32>> {
        let mut hosts = Vec::new();
        self.resolve_placement_into(placement, &mut hosts);
        hosts
    }

    /// [`Self::resolve_placement`] into a caller-owned buffer: the
    /// per-module host lists refill in place, so replan loops reuse
    /// their capacity instead of reallocating the whole table.
    pub fn resolve_placement_into(&self, placement: &Placement, hosts: &mut Vec<Vec<u32>>) {
        hosts.resize_with(self.module_count(), Vec::new);
        for h in hosts.iter_mut() {
            h.clear();
        }
        for (m, d) in placement.iter() {
            if let (Some(mi), Some(di)) = (self.module_index(m), self.device_index(d)) {
                hosts[mi as usize].push(di);
            }
        }
    }

    /// Interns a [`Route`] into a dense module → device map
    /// (`u32::MAX` for unrouted modules).
    pub fn resolve_route(&self, route: &Route) -> Vec<u32> {
        let mut out = vec![u32::MAX; self.module_count()];
        for (m, d) in route.iter() {
            if let (Some(mi), Some(di)) = (self.module_index(m), self.device_index(d)) {
                out[mi as usize] = di;
            }
        }
        out
    }

    /// Routes one canonical request of `model` over per-module host
    /// lists (Eq. 7): each module to the hosting device with the
    /// smallest `t_comp` for `profile`, names breaking ties. Returns the
    /// chosen device per module of the model, `(module, device)` pairs
    /// in `encoders ++ [head]` order, or `None` if a required module has
    /// no host (the caller sheds or declares the placement unservable).
    pub fn route_model(
        &self,
        model: usize,
        profile: &RequestProfile,
        hosts: &[Vec<u32>],
    ) -> Option<Vec<(u32, u32)>> {
        let rm = &self.models[model];
        let mut out = Vec::with_capacity(rm.encoders.len() + 1);
        if self.route_model_into(model, profile, hosts, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// [`Self::route_model`] into a caller-owned buffer (cleared
    /// first). Returns whether the model is routable; on `false` the
    /// buffer is left empty. Selection is identical to `route_model`.
    pub fn route_model_into(
        &self,
        model: usize,
        profile: &RequestProfile,
        hosts: &[Vec<u32>],
        out: &mut Vec<(u32, u32)>,
    ) -> bool {
        let rm = &self.models[model];
        out.clear();
        for &m in rm.encoders.iter().chain(std::iter::once(&rm.head)) {
            let units = profile.units(self.module_kinds[m as usize]);
            let mut best: Option<(f64, u32)> = None;
            for &d in &hosts[m as usize] {
                let t = self.compute_time_units(m, d, units);
                let better = match best {
                    None => true,
                    Some((bt, bd)) => {
                        t < bt || (t == bt && self.device_rank(d) < self.device_rank(bd))
                    }
                };
                if better {
                    best = Some((t, d));
                }
            }
            let Some((_, d)) = best else {
                out.clear();
                return false;
            };
            out.push((m, d));
        }
        true
    }

    /// End-to-end latency `t_total` (Eq. 1) of one `profile`-shaped
    /// request of `model` originating at `source`, with `device_of`
    /// giving the routed device per module index. Mirrors
    /// [`crate::objective::total_latency`]'s arithmetic exactly
    /// (including the co-located-encoder lane scheduling refinement);
    /// allocation-free on stack buffers for models with up to 8
    /// encoders (the zoo tops out at 3), falling back to heap buffers
    /// beyond that.
    pub fn total_latency(
        &self,
        model: usize,
        profile: &RequestProfile,
        source: u32,
        device_of: impl Fn(u32) -> u32,
    ) -> f64 {
        let n_enc = self.models[model].encoders.len();
        if n_enc <= MAX_FANOUT {
            let mut enc_mod = [0u32; MAX_FANOUT];
            let mut enc_dev = [0u32; MAX_FANOUT];
            let mut input_tx = [0.0f64; MAX_FANOUT];
            let mut compute = [0.0f64; MAX_FANOUT];
            let mut output_tx = [0.0f64; MAX_FANOUT];
            let mut grouped = [false; MAX_FANOUT];
            let mut group = [0usize; MAX_FANOUT];
            let mut lanes = [0.0f64; MAX_FANOUT];
            self.total_latency_impl(
                model,
                profile,
                source,
                &device_of,
                &mut enc_mod[..n_enc],
                &mut enc_dev[..n_enc],
                &mut input_tx[..n_enc],
                &mut compute[..n_enc],
                &mut output_tx[..n_enc],
                &mut grouped[..n_enc],
                &mut group[..n_enc],
                &mut lanes[..n_enc],
            )
        } else {
            self.total_latency_impl(
                model,
                profile,
                source,
                &device_of,
                &mut vec![0u32; n_enc],
                &mut vec![0u32; n_enc],
                &mut vec![0.0f64; n_enc],
                &mut vec![0.0f64; n_enc],
                &mut vec![0.0f64; n_enc],
                &mut vec![false; n_enc],
                &mut vec![0usize; n_enc],
                &mut vec![0.0f64; n_enc],
            )
        }
    }

    /// The Eq. 1–3 evaluation over caller-provided scratch buffers, all
    /// of length `encoders.len()`.
    #[allow(clippy::too_many_arguments)]
    fn total_latency_impl(
        &self,
        model: usize,
        profile: &RequestProfile,
        source: u32,
        device_of: &impl Fn(u32) -> u32,
        enc_mod: &mut [u32],
        enc_dev: &mut [u32],
        input_tx: &mut [f64],
        compute: &mut [f64],
        output_tx: &mut [f64],
        grouped: &mut [bool],
        group: &mut [usize],
        lanes: &mut [f64],
    ) -> f64 {
        let rm = &self.models[model];
        let n_enc = rm.encoders.len();
        let head = rm.head;
        let head_dev = device_of(head);
        let head_kind = self.module_kinds[head as usize];

        // Per-encoder path terms (Eq. 2), in encoder order.
        for (i, &m) in rm.encoders.iter().enumerate() {
            let kind = self.module_kinds[m as usize];
            let n = device_of(m);
            let units = profile.units(kind);
            enc_mod[i] = m;
            enc_dev[i] = n;
            input_tx[i] = self.transfer_time(source, n, profile.input_bytes(kind));
            compute[i] = self.compute_time_units(m, n, units);
            output_tx[i] = self.transfer_time(
                n,
                head_dev,
                self.module_specs[m as usize].output_bytes(units),
            );
        }

        // Lane-schedule co-located encoders per device; on distinct
        // devices this reduces to Eq. 2's max. Group order is free (the
        // result is a max); within a group, longest compute first, module
        // id (== index) breaking ties — the dispatch rule.
        let mut t = 0.0f64;
        grouped[..n_enc].fill(false);
        for i in 0..n_enc {
            if grouped[i] {
                continue;
            }
            let dev = enc_dev[i];
            let mut k = 0;
            for (j, &d) in enc_dev[..n_enc].iter().enumerate() {
                if d == dev {
                    grouped[j] = true;
                    group[k] = j;
                    k += 1;
                }
            }
            group[..k].sort_by(|&a, &b| {
                compute[b]
                    .partial_cmp(&compute[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| enc_mod[a].cmp(&enc_mod[b]))
            });
            // A group of k tasks never uses more than k lanes, and with
            // spare lanes the first-minimal rule always lands on a fresh
            // (0.0) lane — so clamping to k lanes is schedule-identical
            // to the device's full `parallelism` and bounds the buffer.
            let lanes_n = self.device_parallelism[dev as usize].min(k);
            lanes[..lanes_n].fill(0.0);
            for &p in &group[..k] {
                // Earliest-free lane (first minimal, as `min_by` picks).
                let mut idx = 0;
                for (l, &free_at) in lanes[..lanes_n].iter().enumerate().skip(1) {
                    if free_at < lanes[idx] {
                        idx = l;
                    }
                }
                let start = lanes[idx].max(input_tx[p]);
                let done = start + compute[p];
                lanes[idx] = done;
                t = t.max(done + output_tx[p]);
            }
        }

        // Generative heads receive the raw query concurrently (Eq. 2's
        // refinement), then the head itself runs (Eq. 3).
        if head_kind == ModuleKind::LanguageModel {
            let q_tx = self.transfer_time(
                source,
                head_dev,
                profile.input_bytes(ModuleKind::LanguageModel),
            );
            t = t.max(q_tx);
        }
        t + self.compute_time_units(head, head_dev, profile.units(head_kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective;
    use crate::placement::greedy_place;
    use crate::routing::route_request;
    use s2m3_net::fleet::Fleet;

    fn multi_instance() -> Instance {
        Instance::on_fleet(
            Fleet::standard_testbed(),
            &[
                ("CLIP ViT-B/16", 101),
                ("Encoder-only VQA (Small)", 1),
                ("AlignBind-B", 16),
                ("CLIP-Classifier Food-101", 0),
                ("Flint-v0.5-1B", 1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn interning_round_trips_every_id() {
        let i = multi_instance();
        let r = ResolvedInstance::new(&i).unwrap();
        assert_eq!(r.device_count(), i.fleet().len());
        assert_eq!(r.module_count(), i.distinct_modules().len());
        for d in 0..r.device_count() as u32 {
            assert_eq!(r.device_index(r.device_name(d)), Some(d));
        }
        for m in 0..r.module_count() as u32 {
            assert_eq!(r.module_index(r.module_name(m)), Some(m));
        }
        assert!(r.device_index(&"ghost".into()).is_none());
        assert!(r.module_index(&"ghost/module".into()).is_none());
        assert_eq!(r.device_name(r.requester()), i.fleet().requester());
    }

    #[test]
    fn module_index_order_is_id_order() {
        let i = multi_instance();
        let r = ResolvedInstance::new(&i).unwrap();
        for w in 0..r.module_count().saturating_sub(1) {
            assert!(r.module_name(w as u32) < r.module_name(w as u32 + 1));
        }
    }

    #[test]
    fn device_rank_orders_by_name() {
        let i = multi_instance();
        let r = ResolvedInstance::new(&i).unwrap();
        for a in 0..r.device_count() as u32 {
            for b in 0..r.device_count() as u32 {
                assert_eq!(
                    r.device_rank(a) < r.device_rank(b),
                    r.device_name(a) < r.device_name(b),
                );
            }
        }
    }

    #[test]
    fn compute_tables_match_string_path_bitwise() {
        let i = multi_instance();
        let r = ResolvedInstance::new(&i).unwrap();
        for (mi, m) in i.distinct_modules().iter().enumerate() {
            for d in i.fleet().devices() {
                let di = r.device_index(&d.id).unwrap();
                for units in [1.0, 16.0, 101.0, 128.0] {
                    let via_string = d.compute_time(m, units);
                    let via_index = r.compute_time_units(mi as u32, di, units);
                    assert_eq!(via_string.to_bits(), via_index.to_bits());
                }
                assert_eq!(
                    i.compute_time(m, &d.id).unwrap().to_bits(),
                    r.placement_compute(mi as u32, di).to_bits()
                );
            }
        }
    }

    #[test]
    fn transfer_tables_match_topology_bitwise() {
        let i = multi_instance();
        let r = ResolvedInstance::new(&i).unwrap();
        let topo = i.fleet().topology();
        for a in i.fleet().devices() {
            for b in i.fleet().devices() {
                let (ai, bi) = (
                    r.device_index(&a.id).unwrap(),
                    r.device_index(&b.id).unwrap(),
                );
                for bytes in [0u64, 256, 500 * 1024] {
                    let via_string = topo.transfer_time(&a.id, &b.id, bytes).unwrap();
                    assert_eq!(
                        via_string.to_bits(),
                        r.transfer_time(ai, bi, bytes).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn resolved_objective_matches_string_objective_bitwise() {
        let i = multi_instance();
        let r = ResolvedInstance::new(&i).unwrap();
        let p = greedy_place(&i).unwrap();
        let hosts = r.resolve_placement(&p);
        for (k, dep) in i.deployments().iter().enumerate() {
            let q = i.request(k as u64, &dep.model.name).unwrap();
            let route = route_request(&i, &p, &q).unwrap();
            let via_string = objective::total_latency(&i, &route, &q).unwrap();

            let resolved_route = r.resolve_route(&route);
            let via_index =
                r.total_latency(k, &q.profile, r.requester(), |m| resolved_route[m as usize]);
            assert_eq!(
                via_string.to_bits(),
                via_index.to_bits(),
                "{}",
                dep.model.name
            );

            // Eq. 7 routing agrees with the string router, pair by pair.
            let routed = r.route_model(k, &q.profile, &hosts).unwrap();
            for (m, d) in routed {
                assert_eq!(
                    route.device_for(r.module_name(m)).unwrap(),
                    r.device_name(d)
                );
            }
        }
    }

    #[test]
    fn unhosted_module_is_unroutable() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let r = ResolvedInstance::new(&i).unwrap();
        let hosts = vec![Vec::new(); r.module_count()];
        assert!(r
            .route_model(0, &i.deployments()[0].profile, &hosts)
            .is_none());
    }
}
