//! Ranking metrics beyond top-1 accuracy: recall@k and per-class error
//! analysis for the retrieval/alignment benchmarks.
//!
//! CLIP-style zero-shot evaluation is a ranking task; top-1 accuracy
//! (Table VIII) is recall@1. This module generalizes the harness so a
//! deployment can be judged at the operating points retrieval products
//! actually use (top-5 suggestions, top-10 search results).

use std::collections::BTreeMap;

use s2m3_models::exec::{ExecError, Executable};
use s2m3_models::input::Modality;
use s2m3_models::zoo::ModelSpec;
use s2m3_tensor::Matrix;

use crate::dataset::Dataset;

/// Ranking evaluation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingResult {
    /// Total ranked samples.
    pub total: usize,
    /// Hits within each requested cutoff, keyed by k.
    pub hits_at: BTreeMap<usize, usize>,
    /// Per-class top-1 error counts (class → misses).
    pub misses_by_class: BTreeMap<usize, usize>,
}

impl RankingResult {
    /// recall@k in [0, 1]; 0 for unrequested cutoffs.
    pub fn recall_at(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.hits_at
            .get(&k)
            .map(|&h| h as f64 / self.total as f64)
            .unwrap_or(0.0)
    }

    /// The classes with the most top-1 misses, worst first.
    pub fn hardest_classes(&self, n: usize) -> Vec<(usize, usize)> {
        let mut v: Vec<_> = self.misses_by_class.iter().map(|(&c, &m)| (c, m)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

/// Ranks each sample's candidates and scores recall at the given cutoffs.
///
/// Only meaningful for models whose head produces one score per candidate
/// (retrieval, alignment, classification).
///
/// # Errors
///
/// [`ExecError`] on modality mismatches.
pub fn rank(
    model: &ModelSpec,
    dataset: &Dataset,
    ks: &[usize],
) -> Result<RankingResult, ExecError> {
    let encoders: Vec<Executable> = model
        .encoders()
        .iter()
        .map(Executable::for_spec)
        .collect::<Result<_, _>>()?;
    let head = Executable::for_spec(model.head())?;
    let mut cached_text: Option<(s2m3_models::input::ModalityInput, Matrix)> = None;

    let mut result = RankingResult {
        total: 0,
        hits_at: ks.iter().map(|&k| (k, 0)).collect(),
        misses_by_class: BTreeMap::new(),
    };

    for sample in &dataset.samples {
        let mut encodings = Vec::with_capacity(encoders.len());
        for enc in &encoders {
            let kind = enc.spec().kind;
            let modality = kind.modality().expect("encoders have modalities");
            let payload = sample
                .modality(modality)
                .ok_or(ExecError::MissingEncoding(kind))?;
            let emb = if modality == Modality::Text {
                match &cached_text {
                    Some((cin, cout)) if cin == payload => cout.clone(),
                    _ => {
                        let out = enc.encode(payload)?;
                        cached_text = Some((payload.clone(), out.clone()));
                        out
                    }
                }
            } else {
                enc.encode(payload)?
            };
            encodings.push((kind, emb));
        }
        let scores = head.run_head(&encodings, sample.query.as_ref())?;
        let row = scores.row(0)?;
        // Rank of the true label = number of strictly better candidates.
        let true_score = row.get(sample.label).copied().unwrap_or(f32::NEG_INFINITY);
        let rank = row.iter().filter(|&&s| s > true_score).count();

        result.total += 1;
        for (&k, hits) in result.hits_at.iter_mut() {
            if rank < k {
                *hits += 1;
            }
        }
        if rank >= 1 {
            *result.misses_by_class.entry(sample.label).or_default() += 1;
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::Benchmark;
    use crate::evaluate;
    use s2m3_models::zoo::Zoo;

    #[test]
    fn recall_is_monotone_in_k() {
        let zoo = Zoo::standard();
        let d = Dataset::generate(&Benchmark::cifar100(), 200);
        let r = rank(zoo.model("CLIP ViT-B/16").unwrap(), &d, &[1, 5, 10]).unwrap();
        let (r1, r5, r10) = (r.recall_at(1), r.recall_at(5), r.recall_at(10));
        assert!(r1 <= r5 && r5 <= r10, "{r1} {r5} {r10}");
        assert!(r10 <= 1.0 && r1 > 0.2);
        // Top-5 materially beats top-1 on a 100-class benchmark.
        assert!(r5 > r1 + 0.05, "r5 {r5} vs r1 {r1}");
    }

    #[test]
    fn recall_at_1_equals_accuracy() {
        let zoo = Zoo::standard();
        let model = zoo.model("CLIP ViT-B/16").unwrap();
        let d = Dataset::generate(&Benchmark::cifar10(), 150);
        let acc = evaluate(model, &d).unwrap().accuracy();
        let r = rank(model, &d, &[1]).unwrap();
        assert!((r.recall_at(1) - acc).abs() < 1e-9);
    }

    #[test]
    fn hardest_classes_are_reported() {
        let zoo = Zoo::standard();
        let d = Dataset::generate(&Benchmark::country211(), 300);
        let r = rank(zoo.model("CLIP ViT-B/16").unwrap(), &d, &[1]).unwrap();
        let hardest = r.hardest_classes(5);
        assert!(!hardest.is_empty());
        assert!(hardest.len() <= 5);
        // Sorted worst-first.
        for w in hardest.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn unrequested_cutoffs_read_zero() {
        let zoo = Zoo::standard();
        let d = Dataset::generate(&Benchmark::cifar10(), 20);
        let r = rank(zoo.model("CLIP ViT-B/16").unwrap(), &d, &[1]).unwrap();
        assert_eq!(r.recall_at(7), 0.0);
    }
}
