//! Benchmark definitions mirroring the paper's Sec. VI "Tasks and
//! benchmarks" list.

use serde::{Deserialize, Serialize};

use s2m3_models::zoo::Task;

/// A synthetic benchmark: name, task family, class structure, and a
/// calibrated difficulty (per-sample noise level).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    /// Canonical name (doubles as the prototype seed namespace).
    pub name: String,
    /// Which task family evaluates on it.
    pub task: Task,
    /// Number of classes (or candidate answers).
    pub n_classes: usize,
    /// Per-sample feature-noise standard deviation. Calibrated per
    /// benchmark so measured zero-shot accuracy approximates the paper's
    /// reported column (see `table_viii`).
    pub noise: f32,
    /// Extra query-noise for VQA-style benchmarks (distorts the question
    /// channel instead of the image).
    pub query_noise: f32,
}

impl Benchmark {
    fn new(name: &str, task: Task, n_classes: usize, noise: f32, query_noise: f32) -> Self {
        Benchmark {
            name: name.to_string(),
            task,
            n_classes,
            noise,
            query_noise,
        }
    }

    /// Food-101 (image-text retrieval / classification), 101 classes.
    pub fn food101() -> Self {
        Self::new("food101", Task::ImageTextRetrieval, 101, 1.8, 0.0)
    }

    /// CIFAR-10, 10 classes — the easy benchmark.
    pub fn cifar10() -> Self {
        Self::new("cifar10", Task::ImageTextRetrieval, 10, 2.2, 0.0)
    }

    /// CIFAR-100, 100 classes.
    pub fn cifar100() -> Self {
        Self::new("cifar100", Task::ImageTextRetrieval, 100, 2.35, 0.0)
    }

    /// Country-211, 211 classes — the brutal one (paper: 22–35%).
    pub fn country211() -> Self {
        Self::new("country211", Task::ImageTextRetrieval, 211, 3.6, 0.0)
    }

    /// Flowers-102, 102 classes.
    pub fn flowers102() -> Self {
        Self::new("flowers102", Task::ImageTextRetrieval, 102, 2.3, 0.0)
    }

    /// MS COCO yes/no questions for encoder-only VQA, 2 classes.
    /// The namespace matches the classifier head id
    /// (`head/classifier-vqa-coco-s` → `vqa-coco-s`).
    pub fn coco_vqa() -> Self {
        Self::new("vqa-coco-s", Task::EncoderVqa, 2, 2.5, 0.0)
    }

    /// VQA-v2 for decoder-only VQA over the 32-answer space.
    pub fn vqa_v2() -> Self {
        Self::new("vqa-v2", Task::DecoderVqa, 32, 0.4, 1.9)
    }

    /// ScienceQA — harder reasoning, noisier questions.
    pub fn science_qa() -> Self {
        Self::new("scienceqa", Task::DecoderVqa, 32, 0.4, 2.35)
    }

    /// TextVQA — reading text in images; hardest of the three.
    pub fn text_vqa() -> Self {
        Self::new("textvqa", Task::DecoderVqa, 32, 0.4, 2.75)
    }

    /// AudioSet-style cross-modal alignment (the paper's As-A), 16
    /// classes.
    pub fn audio_set() -> Self {
        Self::new("as-a", Task::CrossModalAlignment, 16, 2.0, 0.0)
    }

    /// Food-101 as an image-classification benchmark (the paper's fifth
    /// task reuses Food-101 with a classifier head). The namespace
    /// matches `head/classifier-food101`.
    pub fn food101_classification() -> Self {
        Self::new("food101", Task::ImageClassification, 101, 1.8, 0.0)
    }

    /// All ten benchmarks of Sec. VI.
    pub fn all() -> Vec<Benchmark> {
        vec![
            Self::food101(),
            Self::cifar10(),
            Self::cifar100(),
            Self::country211(),
            Self::flowers102(),
            Self::coco_vqa(),
            Self::vqa_v2(),
            Self::science_qa(),
            Self::text_vqa(),
            Self::audio_set(),
        ]
    }

    /// Looks a benchmark up by name (classification variant excluded —
    /// it shares the `food101` namespace).
    pub fn by_name(name: &str) -> Option<Benchmark> {
        Self::all().into_iter().find(|b| b.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_benchmarks_cover_five_tasks() {
        let all = Benchmark::all();
        assert_eq!(all.len(), 10);
        let tasks: std::collections::BTreeSet<_> = all.iter().map(|b| b.task).collect();
        assert!(tasks.len() >= 4);
    }

    #[test]
    fn class_counts_match_the_real_datasets() {
        assert_eq!(Benchmark::food101().n_classes, 101);
        assert_eq!(Benchmark::cifar10().n_classes, 10);
        assert_eq!(Benchmark::cifar100().n_classes, 100);
        assert_eq!(Benchmark::country211().n_classes, 211);
        assert_eq!(Benchmark::flowers102().n_classes, 102);
        assert_eq!(Benchmark::coco_vqa().n_classes, 2);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Benchmark::by_name("cifar10"), Some(Benchmark::cifar10()));
        assert!(Benchmark::by_name("imagenet").is_none());
    }

    #[test]
    fn country211_is_hardest_retrieval() {
        let c = Benchmark::country211();
        for b in [
            Benchmark::food101(),
            Benchmark::cifar10(),
            Benchmark::flowers102(),
        ] {
            assert!(c.noise > b.noise || c.n_classes > b.n_classes);
        }
    }
}
