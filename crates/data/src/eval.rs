//! Zero-shot evaluation: runs a model over a dataset and measures
//! accuracy (centralized reference execution; the distributed runtime is
//! certified bit-identical in `s2m3-runtime`).

use s2m3_models::exec::{ExecError, Executable};
use s2m3_models::input::Modality;
use s2m3_models::zoo::ModelSpec;
use s2m3_tensor::ops;

use crate::dataset::Dataset;

/// Evaluation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalResult {
    /// Correctly predicted samples.
    pub correct: usize,
    /// Total samples.
    pub total: usize,
}

impl EvalResult {
    /// Accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.correct as f64 / self.total as f64
    }

    /// Accuracy in percent.
    pub fn percent(&self) -> f64 {
        self.accuracy() * 100.0
    }
}

/// Evaluates `model` on `dataset`.
///
/// Candidate text prompts are identical across samples of a retrieval /
/// alignment benchmark, so their encoding is computed once and reused —
/// mirroring how zero-shot CLIP evaluation caches class embeddings.
///
/// # Errors
///
/// [`ExecError`] if the model's modalities do not match the dataset.
pub fn evaluate(model: &ModelSpec, dataset: &Dataset) -> Result<EvalResult, ExecError> {
    let encoders: Vec<Executable> = model
        .encoders()
        .iter()
        .map(Executable::for_spec)
        .collect::<Result<_, _>>()?;
    let head = Executable::for_spec(model.head())?;

    // Cache the candidate-prompt encoding if every sample shares it.
    let mut cached_text: Option<(s2m3_models::input::ModalityInput, s2m3_tensor::Matrix)> = None;

    let mut correct = 0;
    for sample in &dataset.samples {
        let mut encodings = Vec::with_capacity(encoders.len());
        for enc in &encoders {
            let kind = enc.spec().kind;
            let modality = kind.modality().expect("encoders have modalities");
            let payload = sample
                .modality(modality)
                .ok_or(ExecError::MissingEncoding(kind))?;
            let emb = if modality == Modality::Text {
                match &cached_text {
                    Some((cached_in, cached_out)) if cached_in == payload => cached_out.clone(),
                    _ => {
                        let out = enc.encode(payload)?;
                        cached_text = Some((payload.clone(), out.clone()));
                        out
                    }
                }
            } else {
                enc.encode(payload)?
            };
            encodings.push((kind, emb));
        }
        let scores = head.run_head(&encodings, sample.query.as_ref())?;
        let pred = ops::argmax_rows(&scores)?[0];
        if pred == sample.label {
            correct += 1;
        }
    }
    Ok(EvalResult {
        correct,
        total: dataset.samples.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::Benchmark;
    use s2m3_models::zoo::Zoo;

    fn acc(model: &str, bench: &Benchmark, n: usize) -> f64 {
        let zoo = Zoo::standard();
        let d = Dataset::generate(bench, n);
        evaluate(zoo.model(model).unwrap(), &d).unwrap().percent()
    }

    #[test]
    fn noiseless_datasets_score_nearly_perfect() {
        let mut b = Benchmark::cifar10();
        b.noise = 0.0;
        let a = acc("CLIP ViT-B/16", &b, 40);
        assert!(a > 95.0, "clean accuracy {a:.1}");
    }

    #[test]
    fn larger_towers_score_higher() {
        // CIFAR-10 has the most stable measured gap (~6 points).
        let b = Benchmark::cifar10();
        let small = acc("CLIP ViT-B/16", &b, 300);
        let large = acc("CLIP ViT-L/14@336", &b, 300);
        assert!(
            large > small,
            "ViT-L ({large:.1}) must beat ViT-B ({small:.1})"
        );
    }

    #[test]
    fn more_classes_is_harder() {
        let easy = acc("CLIP ViT-B/16", &Benchmark::cifar10(), 150);
        let hard = acc("CLIP ViT-B/16", &Benchmark::country211(), 150);
        assert!(
            easy > hard + 20.0,
            "cifar10 {easy:.1} vs country211 {hard:.1}"
        );
    }

    #[test]
    fn better_llms_answer_more_questions() {
        let b = Benchmark::science_qa();
        let flint = acc("Flint-v0.5-1B", &b, 150);
        let llava = acc("LLaVA-v1.5-7B", &b, 150);
        assert!(llava > flint, "LLaVA {llava:.1} vs Flint {flint:.1}");
    }

    #[test]
    fn alignment_and_classification_evaluate() {
        let a = acc("AlignBind-B", &Benchmark::audio_set(), 100);
        assert!(a > 30.0, "alignment accuracy {a:.1}");
        let c = acc(
            "CLIP-Classifier Food-101",
            &Benchmark::food101_classification(),
            100,
        );
        assert!(c > 30.0, "classification accuracy {c:.1}");
    }

    #[test]
    fn eval_result_arithmetic() {
        let r = EvalResult {
            correct: 3,
            total: 4,
        };
        assert_eq!(r.accuracy(), 0.75);
        assert_eq!(r.percent(), 75.0);
        assert_eq!(
            EvalResult {
                correct: 0,
                total: 0
            }
            .accuracy(),
            0.0
        );
    }

    #[test]
    fn deterministic_evaluation() {
        let b = Benchmark::cifar100();
        assert_eq!(acc("CLIP ViT-B/16", &b, 40), acc("CLIP ViT-B/16", &b, 40));
    }
}
