//! Columnar completion-event sink for memory-flat serving runs.
//!
//! The streaming serve path can no longer hand back per-request detail
//! in the in-memory report (that is the point: the report is O(1) in
//! the number of arrivals). When per-request records are still wanted —
//! latency CDFs, per-device traces, offline re-aggregation across a
//! sweep — the engine streams one [`CompletionRow`] per completed
//! request into this sink, which buffers rows and writes them as
//! column-major row groups, the same layout idea as the parquet result
//! files of large-scale simulators, minus the dependency.
//!
//! ## On-disk format
//!
//! ```text
//! magic: b"S2M3COL1" (8 bytes)
//! row group, repeated until EOF:
//!   n_rows      u32 LE
//!   arrival_ns  n_rows × u64 LE
//!   finish_ns   n_rows × u64 LE
//!   device      n_rows × u32 LE
//!   class       n_rows × u32 LE   (u32::MAX encodes "no class")
//!   latency_s   n_rows × f64 LE (bit pattern)
//! ```
//!
//! Row groups hold up to [`ROWS_PER_GROUP`] rows; the file is
//! EOF-delimited (no footer), so a crashed run still leaves every
//! fully flushed group readable. All integers are little-endian;
//! floats are stored as their IEEE-754 bit patterns.

use std::io::{Read, Write};

/// Magic bytes opening every sink file (format version 1).
pub const MAGIC: &[u8; 8] = b"S2M3COL1";

/// Rows buffered per row group before a flush.
pub const ROWS_PER_GROUP: usize = 4096;

/// One completed request, as recorded by the serving loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionRow {
    /// Arrival time, virtual nanoseconds.
    pub arrival_ns: u64,
    /// Completion time, virtual nanoseconds.
    pub finish_ns: u64,
    /// Index of the device that ran the request's head module.
    pub device: u32,
    /// Deadline-class index, if the workload defines classes.
    pub class: Option<u32>,
    /// End-to-end latency, seconds.
    pub latency_s: f64,
}

/// Class sentinel stored on disk for `class: None`.
const NO_CLASS: u32 = u32::MAX;

/// Buffering column-major writer (see the module docs for the format).
///
/// Memory use is bounded by [`ROWS_PER_GROUP`] buffered rows regardless
/// of how many rows pass through. Call [`ColumnWriter::finish`] to
/// flush the final partial group; dropping without it loses only the
/// unflushed tail.
#[derive(Debug)]
pub struct ColumnWriter<W: Write> {
    out: W,
    rows: Vec<CompletionRow>,
    written: u64,
}

impl<W: Write> ColumnWriter<W> {
    /// Wraps `out`, writing the magic header immediately.
    ///
    /// # Errors
    ///
    /// Propagates the header write failure.
    pub fn new(mut out: W) -> std::io::Result<Self> {
        out.write_all(MAGIC)?;
        Ok(ColumnWriter {
            out,
            rows: Vec::with_capacity(ROWS_PER_GROUP),
            written: 0,
        })
    }

    /// Appends one row, flushing a full group when the buffer fills.
    ///
    /// # Errors
    ///
    /// Propagates a group-flush write failure.
    pub fn push(&mut self, row: CompletionRow) -> std::io::Result<()> {
        self.rows.push(row);
        if self.rows.len() >= ROWS_PER_GROUP {
            self.flush_group()?;
        }
        Ok(())
    }

    /// Total rows pushed so far (flushed or buffered).
    pub fn rows_written(&self) -> u64 {
        self.written + self.rows.len() as u64
    }

    /// Flushes the buffered tail and the underlying writer, returning
    /// the total row count.
    ///
    /// # Errors
    ///
    /// Propagates write/flush failure.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.flush_group()?;
        self.out.flush()?;
        Ok(self.written)
    }

    fn flush_group(&mut self) -> std::io::Result<()> {
        if self.rows.is_empty() {
            return Ok(());
        }
        let n = self.rows.len();
        self.out.write_all(&(n as u32).to_le_bytes())?;
        let mut col = Vec::with_capacity(n * 8);
        for r in &self.rows {
            col.extend_from_slice(&r.arrival_ns.to_le_bytes());
        }
        for r in &self.rows {
            col.extend_from_slice(&r.finish_ns.to_le_bytes());
        }
        for r in &self.rows {
            col.extend_from_slice(&r.device.to_le_bytes());
        }
        for r in &self.rows {
            col.extend_from_slice(&r.class.unwrap_or(NO_CLASS).to_le_bytes());
        }
        for r in &self.rows {
            col.extend_from_slice(&r.latency_s.to_bits().to_le_bytes());
        }
        self.out.write_all(&col)?;
        self.written += n as u64;
        self.rows.clear();
        Ok(())
    }
}

/// Reads every row of a sink stream written by [`ColumnWriter`].
///
/// # Errors
///
/// Fails on a bad magic header, a truncated row group, or an
/// underlying read error.
pub fn read_rows<R: Read>(mut input: R) -> std::io::Result<Vec<CompletionRow>> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not an S2M3COL1 sink file",
        ));
    }
    let mut rows = Vec::new();
    loop {
        let mut len = [0u8; 4];
        // A clean EOF exactly at a group boundary ends the file.
        match input.read_exact(&mut len) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let n = u32::from_le_bytes(len) as usize;
        let mut buf = vec![0u8; n * (8 + 8 + 4 + 4 + 8)];
        input.read_exact(&mut buf)?;
        let u64_at = |off: usize, i: usize| {
            u64::from_le_bytes(buf[off + i * 8..off + i * 8 + 8].try_into().unwrap())
        };
        let u32_at = |off: usize, i: usize| {
            u32::from_le_bytes(buf[off + i * 4..off + i * 4 + 4].try_into().unwrap())
        };
        let (o_fin, o_dev) = (n * 8, n * 16);
        let (o_cls, o_lat) = (n * 20, n * 24);
        for i in 0..n {
            let class = match u32_at(o_cls, i) {
                NO_CLASS => None,
                c => Some(c),
            };
            rows.push(CompletionRow {
                arrival_ns: u64_at(0, i),
                finish_ns: u64_at(o_fin, i),
                device: u32_at(o_dev, i),
                class,
                latency_s: f64::from_bits(u64_at(o_lat, i)),
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: u64) -> CompletionRow {
        CompletionRow {
            arrival_ns: i * 1_000,
            finish_ns: i * 1_000 + 500,
            device: (i % 3) as u32,
            class: if i.is_multiple_of(2) {
                Some((i % 4) as u32)
            } else {
                None
            },
            latency_s: 5e-7 + i as f64 * 1e-9,
        }
    }

    #[test]
    fn multi_group_files_roundtrip_and_bound_the_buffer() {
        let n = ROWS_PER_GROUP as u64 * 2 + 137;
        let mut buf = Vec::new();
        let mut w = ColumnWriter::new(&mut buf).unwrap();
        for i in 0..n {
            w.push(row(i)).unwrap();
            assert!(w.rows.len() < ROWS_PER_GROUP, "full groups flush eagerly");
        }
        assert_eq!(w.rows_written(), n);
        assert_eq!(w.written, ROWS_PER_GROUP as u64 * 2, "two groups on disk");
        assert_eq!(w.finish().unwrap(), n);
        let rows = read_rows(buf.as_slice()).unwrap();
        assert_eq!(rows.len() as u64, n);
        assert_eq!(rows[ROWS_PER_GROUP], row(ROWS_PER_GROUP as u64));
    }

    #[test]
    fn roundtrip_preserves_every_row() {
        let n = ROWS_PER_GROUP as u64 + 7;
        let mut buf = Vec::new();
        let mut w = ColumnWriter::new(&mut buf).unwrap();
        for i in 0..n {
            w.push(row(i)).unwrap();
        }
        assert_eq!(w.finish().unwrap(), n);
        let rows = read_rows(buf.as_slice()).unwrap();
        assert_eq!(rows.len() as u64, n);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(*r, row(i as u64));
        }
    }

    #[test]
    fn empty_stream_roundtrips() {
        let mut buf = Vec::new();
        let w = ColumnWriter::new(&mut buf).unwrap();
        assert_eq!(w.finish().unwrap(), 0);
        assert_eq!(buf, MAGIC);
        assert!(read_rows(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_and_truncation_are_errors() {
        assert!(read_rows(&b"NOTMAGIC"[..]).is_err());
        let mut buf = Vec::new();
        let mut w = ColumnWriter::new(&mut buf).unwrap();
        for i in 0..10 {
            w.push(row(i)).unwrap();
        }
        w.finish().unwrap();
        // Chop the last column short: the group is unreadable.
        buf.truncate(buf.len() - 3);
        assert!(read_rows(buf.as_slice()).is_err());
    }
}
