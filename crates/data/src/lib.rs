//! # s2m3-data
//!
//! Synthetic stand-ins for the paper's ten public benchmarks and the
//! zero-shot evaluation harness of Table VIII.
//!
//! ## Why synthetic benchmarks are a faithful substitution
//!
//! Table VIII's claim is architectural, not dataset-specific: *splitting a
//! model across devices does not change its outputs*, hence accuracy is
//! identical to centralized inference. That exactness property holds for
//! any dataset — so what the benchmarks must provide is (a) realistic
//! class structure for the tasks, (b) difficulty that scales the way the
//! real benchmarks do (CIFAR-10 easy, Country-211 brutal), and (c) a
//! model-quality ordering (ViT-L beats ViT-B, 7B beats 1B). All three are
//! synthesized: each benchmark has seeded class prototypes in the shared
//! raw-feature space, per-sample noise with a per-benchmark level, and
//! the encoder-quality distortion of [`s2m3_models::exec`] supplies the
//! model ordering. The per-benchmark noise levels are calibrated so the
//! *measured* zero-shot accuracy lands near the paper's reported column.
//!
//! ## Example
//!
//! ```
//! use s2m3_data::{Benchmark, Dataset, evaluate};
//! use s2m3_models::zoo::Zoo;
//!
//! let zoo = Zoo::standard();
//! let bench = Benchmark::cifar10();
//! let dataset = Dataset::generate(&bench, 50);
//! let result = evaluate(zoo.model("CLIP ViT-B/16").unwrap(), &dataset).unwrap();
//! assert!(result.accuracy() > 0.5); // CIFAR-10 is the easy one
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod benchmark;
pub mod dataset;
pub mod eval;
pub mod metrics;
pub mod sink;
pub mod table_viii;

pub use benchmark::Benchmark;
pub use dataset::{Dataset, LabeledSample};
pub use eval::{evaluate, EvalResult};
