//! The Table VIII reference grid: which (model, benchmark) pairs the
//! paper reports, with the paper's S2M3 and "Reported" accuracy columns.

use serde::{Deserialize, Serialize};

use crate::benchmark::Benchmark;

/// One row of Table VIII.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableViiiRow {
    /// Model name (standard-zoo key).
    pub model: &'static str,
    /// Benchmark name.
    pub benchmark: &'static str,
    /// The paper's measured S2M3 accuracy, %.
    pub paper_s2m3: f64,
    /// The originally reported accuracy of the pretrained model, % (None
    /// where the paper shows "–").
    pub reported: Option<f64>,
}

/// All sixteen rows of Table VIII.
pub fn rows() -> Vec<TableViiiRow> {
    let r = |model, benchmark, paper_s2m3, reported| TableViiiRow {
        model,
        benchmark,
        paper_s2m3,
        reported,
    };
    vec![
        r("CLIP ViT-B/16", "food101", 87.7, Some(89.2)),
        r("CLIP ViT-B/16", "cifar10", 90.8, Some(91.6)),
        r("CLIP ViT-B/16", "cifar100", 66.9, Some(68.7)),
        r("CLIP ViT-B/16", "country211", 22.4, Some(23.3)),
        r("CLIP ViT-B/16", "flowers102", 71.0, Some(70.4)),
        r("CLIP ViT-L/14@336", "food101", 93.2, Some(93.8)),
        r("CLIP ViT-L/14@336", "cifar10", 94.9, Some(95.7)),
        r("CLIP ViT-L/14@336", "cifar100", 74.3, Some(77.5)),
        r("CLIP ViT-L/14@336", "country211", 33.9, Some(34.9)),
        r("CLIP ViT-L/14@336", "flowers102", 77.1, Some(78.3)),
        r("Flint-v0.5-1B", "vqa-v2", 70.2, None),
        r("Flint-v0.5-1B", "scienceqa", 41.2, None),
        r("Flint-v0.5-1B", "textvqa", 35.6, None),
        r("LLaVA-v1.5-7B", "vqa-v2", 78.1, Some(78.5)),
        r("LLaVA-v1.5-7B", "scienceqa", 69.4, Some(70.4)),
        r("LLaVA-v1.5-7B", "textvqa", 57.3, None),
    ]
}

/// Resolves a row's benchmark definition.
pub fn benchmark_for(row: &TableViiiRow) -> Benchmark {
    Benchmark::by_name(row.benchmark).expect("table rows reference known benchmarks")
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_models::zoo::Zoo;

    #[test]
    fn sixteen_rows_all_resolvable() {
        let zoo = Zoo::standard();
        let rows = rows();
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert!(
                zoo.model(row.model).is_some(),
                "unknown model {}",
                row.model
            );
            let _ = benchmark_for(row);
        }
    }

    #[test]
    fn paper_accuracy_ordering_is_consistent() {
        // ViT-L beats ViT-B on every shared benchmark in the paper.
        let rows = rows();
        for bench in ["food101", "cifar10", "cifar100", "country211", "flowers102"] {
            let b = rows
                .iter()
                .find(|r| r.model == "CLIP ViT-B/16" && r.benchmark == bench)
                .unwrap();
            let l = rows
                .iter()
                .find(|r| r.model == "CLIP ViT-L/14@336" && r.benchmark == bench)
                .unwrap();
            assert!(l.paper_s2m3 > b.paper_s2m3);
        }
    }
}
