//! Dataset synthesis: class-structured samples around seeded prototypes.

use serde::{Deserialize, Serialize};

use s2m3_models::exec::{answer_prototype, class_prototype};
use s2m3_models::input::{Modality, ModalityInput, RAW_FEATURE_DIM};
use s2m3_models::zoo::Task;
use s2m3_tensor::{ops, Matrix};

use crate::benchmark::Benchmark;

/// One evaluation sample: modality payloads, optional raw query, and the
/// ground-truth label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledSample {
    /// Inputs for the model's encoders.
    pub modalities: Vec<ModalityInput>,
    /// Raw question for generative heads.
    pub query: Option<ModalityInput>,
    /// Ground-truth class / answer index.
    pub label: usize,
}

impl LabeledSample {
    /// The payload for a given modality, if present.
    pub fn modality(&self, m: Modality) -> Option<&ModalityInput> {
        self.modalities.iter().find(|i| i.modality == m)
    }
}

/// A generated dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// The benchmark this dataset realizes.
    pub benchmark: Benchmark,
    /// Evaluation samples.
    pub samples: Vec<LabeledSample>,
}

fn noisy(proto: &Matrix, noise: f32, seed: &str) -> Matrix {
    let n = Matrix::seeded_gaussian(seed, proto.rows(), proto.cols(), noise);
    ops::add(proto, &n).expect("prototype and noise share shape")
}

/// The candidate-prompt matrix for a benchmark: one clean class prototype
/// per row (what zero-shot retrieval feeds the text encoder).
pub fn candidate_prompts(benchmark: &Benchmark) -> Matrix {
    let mut m = Matrix::zeros(benchmark.n_classes, RAW_FEATURE_DIM);
    for c in 0..benchmark.n_classes {
        let p = class_prototype(&benchmark.name, c);
        m.row_mut(c)
            .expect("row in range")
            .copy_from_slice(p.row(0).expect("prototype row"));
    }
    m
}

impl Dataset {
    /// Generates `n_samples` deterministic samples (labels round-robin
    /// over classes, per-sample seeded noise).
    pub fn generate(benchmark: &Benchmark, n_samples: usize) -> Self {
        let mut samples = Vec::with_capacity(n_samples);
        for i in 0..n_samples {
            let label = i % benchmark.n_classes;
            samples.push(Self::sample(benchmark, i as u64, label));
        }
        Dataset {
            benchmark: benchmark.clone(),
            samples,
        }
    }

    /// Generates the `i`-th sample with a chosen label.
    pub fn sample(benchmark: &Benchmark, i: u64, label: usize) -> LabeledSample {
        let b = benchmark;
        match b.task {
            Task::ImageTextRetrieval | Task::ImageClassification => {
                let proto = class_prototype(&b.name, label);
                let image = noisy(&proto, b.noise, &format!("{}/img/{i}", b.name));
                let mut modalities = vec![ModalityInput::with_content(Modality::Image, image)];
                if b.task == Task::ImageTextRetrieval {
                    modalities.push(ModalityInput::with_content(
                        Modality::Text,
                        candidate_prompts(b),
                    ));
                }
                LabeledSample {
                    modalities,
                    query: None,
                    label,
                }
            }
            Task::EncoderVqa => {
                // Image and question both carry the class signal.
                let proto = class_prototype(&b.name, label);
                let image = noisy(&proto, b.noise, &format!("{}/img/{i}", b.name));
                let question = noisy(&proto, b.noise, &format!("{}/q/{i}", b.name));
                LabeledSample {
                    modalities: vec![
                        ModalityInput::with_content(Modality::Image, image),
                        ModalityInput::with_content(Modality::Text, question),
                    ],
                    query: None,
                    label,
                }
            }
            Task::DecoderVqa | Task::ImageCaptioning => {
                // The question aligns with an answer prototype; the image
                // is scene context. Difficulty lives in query_noise.
                let ans = answer_prototype(label);
                let question = noisy(&ans, b.query_noise, &format!("{}/q/{i}", b.name));
                let scene = Matrix::seeded_gaussian(
                    &format!("{}/scene/{i}", b.name),
                    1,
                    RAW_FEATURE_DIM,
                    1.0,
                );
                LabeledSample {
                    modalities: vec![ModalityInput::with_content(Modality::Image, scene)],
                    query: Some(ModalityInput::with_content(Modality::Text, question)),
                    label,
                }
            }
            Task::CrossModalAlignment => {
                let proto = class_prototype(&b.name, label);
                let image = noisy(&proto, b.noise, &format!("{}/img/{i}", b.name));
                let audio = noisy(&proto, b.noise, &format!("{}/aud/{i}", b.name));
                LabeledSample {
                    modalities: vec![
                        ModalityInput::with_content(Modality::Image, image),
                        ModalityInput::with_content(Modality::Text, candidate_prompts(b)),
                        ModalityInput::with_content(Modality::Audio, audio),
                    ],
                    query: None,
                    label,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let b = Benchmark::cifar10();
        assert_eq!(Dataset::generate(&b, 20), Dataset::generate(&b, 20));
    }

    #[test]
    fn labels_round_robin_over_classes() {
        let b = Benchmark::cifar10();
        let d = Dataset::generate(&b, 25);
        assert_eq!(d.samples[0].label, 0);
        assert_eq!(d.samples[9].label, 9);
        assert_eq!(d.samples[10].label, 0);
    }

    #[test]
    fn retrieval_samples_carry_image_and_prompts() {
        let b = Benchmark::food101();
        let s = Dataset::sample(&b, 0, 42);
        assert!(s.modality(Modality::Image).is_some());
        let text = s.modality(Modality::Text).unwrap();
        assert_eq!(text.content.rows(), 101);
        assert!(s.query.is_none());
    }

    #[test]
    fn decoder_vqa_samples_carry_query() {
        let b = Benchmark::vqa_v2();
        let s = Dataset::sample(&b, 3, 7);
        assert!(s.query.is_some());
        assert_eq!(s.modalities.len(), 1);
        assert!(s.label < 32);
    }

    #[test]
    fn alignment_samples_are_trimodal() {
        let b = Benchmark::audio_set();
        let s = Dataset::sample(&b, 0, 3);
        assert_eq!(s.modalities.len(), 3);
        assert!(s.modality(Modality::Audio).is_some());
    }

    #[test]
    fn noise_perturbs_but_preserves_prototype_direction() {
        let b = Benchmark::cifar10();
        let proto = class_prototype(&b.name, 1);
        let s = Dataset::sample(&b, 5, 1);
        let img = &s.modality(Modality::Image).unwrap().content;
        assert_ne!(img, &proto);
        let sim = ops::cosine_similarity(img, &proto).unwrap().at(0, 0);
        assert!(sim > 0.3, "noisy sample lost its class signal: {sim}");
    }
}
