//! Prints the measured Table VIII grid with the final calibration.
use s2m3_data::table_viii;
use s2m3_data::{evaluate, Dataset};
use s2m3_models::zoo::Zoo;

fn main() {
    let zoo = Zoo::standard();
    println!(
        "{:<20} {:<12} {:>9} {:>9} {:>9}",
        "model", "benchmark", "measured", "paper", "reported"
    );
    for row in table_viii::rows() {
        let b = table_viii::benchmark_for(&row);
        let d = Dataset::generate(&b, 500);
        let r = evaluate(zoo.model(row.model).unwrap(), &d).unwrap();
        println!(
            "{:<20} {:<12} {:>8.1}% {:>8.1}% {:>9}",
            row.model,
            row.benchmark,
            r.percent(),
            row.paper_s2m3,
            row.reported
                .map(|v| format!("{v:.1}%"))
                .unwrap_or_else(|| "-".into())
        );
    }
}
