//! Centralized single-device deployment (the paper's Cloud / Local /
//! Desktop / Laptop baselines, Tables VI, VII and IX).

use s2m3_core::error::CoreError;
use s2m3_core::problem::Instance;
use s2m3_models::module::ModuleKind;
use s2m3_net::device::DeviceId;

/// Latency of serving one request of `model` with every module on
/// `device`: raw inputs travel from the requester, then modules run
/// **sequentially** (a monolithic model executes its towers one after
/// another — no per-request module parallelism, which is exactly what
/// S2M3 adds).
///
/// # Errors
///
/// [`CoreError::UnknownModel`] / [`CoreError::UnknownDevice`] on bad
/// names; [`CoreError::Infeasible`] when the model does not fit on the
/// device (the "–" cells of Table VI).
pub fn centralized_latency(
    instance: &Instance,
    model: &str,
    device: &str,
) -> Result<f64, CoreError> {
    let deployment = instance
        .deployment(model)
        .ok_or_else(|| CoreError::UnknownModel(model.to_string()))?;
    let dev_id: DeviceId = device.into();
    let dev = instance.device(&dev_id)?;

    // Memory feasibility: all modules resident at once.
    let needed: u64 = deployment.model.modules().map(|m| m.memory_bytes()).sum();
    if needed > dev.usable_memory_bytes() {
        return Err(CoreError::Infeasible {
            module: deployment.model.head().id.clone(),
            required_bytes: needed,
            best_remaining_bytes: dev.usable_memory_bytes(),
        });
    }

    let requester = instance.fleet().requester().clone();
    let profile = deployment.profile;

    // All raw inputs ship together to the device.
    let input_bytes: u64 = deployment
        .model
        .encoders()
        .iter()
        .map(|m| profile.input_bytes(m.kind))
        .sum::<u64>()
        + if deployment.model.head().kind == ModuleKind::LanguageModel {
            profile.input_bytes(ModuleKind::LanguageModel)
        } else {
            0
        };
    let tx = instance
        .fleet()
        .topology()
        .transfer_time(&requester, &dev_id, input_bytes)
        .map_err(CoreError::UnknownDevice)?;

    // Sequential module execution.
    let mut compute = 0.0;
    for m in deployment.model.modules() {
        compute += dev.compute_time(m, profile.units(m.kind));
    }
    Ok(tx + compute)
}

/// End-to-end centralized latency: inference plus loading the monolithic
/// checkpoint onto the device (Table VII's second latency column).
///
/// # Errors
///
/// See [`centralized_latency`].
pub fn centralized_e2e(instance: &Instance, model: &str, device: &str) -> Result<f64, CoreError> {
    let inference = centralized_latency(instance, model, device)?;
    let loading = s2m3_sim::loading::centralized_loading(instance, model, device)
        .ok_or_else(|| CoreError::UnknownModel(model.to_string()))?;
    Ok(inference + loading)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_net::fleet::Fleet;

    fn instance() -> Instance {
        Instance::on_fleet(Fleet::standard_testbed(), &[("CLIP ViT-B/16", 101)]).unwrap()
    }

    #[test]
    fn cloud_and_local_match_table_vii_regime() {
        let i = instance();
        let cloud = centralized_latency(&i, "CLIP ViT-B/16", "server").unwrap();
        let local = centralized_latency(&i, "CLIP ViT-B/16", "jetson-a").unwrap();
        let desktop = centralized_latency(&i, "CLIP ViT-B/16", "desktop").unwrap();
        let laptop = centralized_latency(&i, "CLIP ViT-B/16", "laptop").unwrap();
        // Paper: 2.44 / 45.19 / 3.46 / 3.02.
        assert!((1.8..3.0).contains(&cloud), "cloud {cloud:.2}");
        assert!((38.0..50.0).contains(&local), "local {local:.2}");
        assert!(
            laptop < desktop,
            "laptop {laptop:.2} vs desktop {desktop:.2}"
        );
        assert!(cloud < laptop);
        assert!(desktop < 5.0 && laptop > 2.0);
    }

    #[test]
    fn infeasible_models_rejected_like_table_vi_dashes() {
        let i =
            Instance::on_fleet(Fleet::standard_testbed(), &[("CLIP ResNet-50x16", 101)]).unwrap();
        // Jetson cannot host RN50x16 centralized (Table VI "–").
        assert!(matches!(
            centralized_latency(&i, "CLIP ResNet-50x16", "jetson-a"),
            Err(CoreError::Infeasible { .. })
        ));
        // The server can.
        assert!(centralized_latency(&i, "CLIP ResNet-50x16", "server").is_ok());
    }

    #[test]
    fn e2e_adds_loading() {
        let i = instance();
        let inf = centralized_latency(&i, "CLIP ViT-B/16", "server").unwrap();
        let e2e = centralized_e2e(&i, "CLIP ViT-B/16", "server").unwrap();
        // Paper: 2.44 → 13.53 (≈11 s of loading on the P40 host).
        assert!(e2e - inf > 8.0, "loading delta {:.2}", e2e - inf);
    }

    #[test]
    fn unknown_names_error() {
        let i = instance();
        assert!(centralized_latency(&i, "ghost", "server").is_err());
        assert!(centralized_latency(&i, "CLIP ViT-B/16", "ghost").is_err());
    }

    #[test]
    fn server_without_gpu_is_slower() {
        // Table VII: 2.44 vs 6.70.
        let mut fleet = Fleet::standard_testbed();
        let i_gpu = Instance::on_fleet(fleet.clone(), &[("CLIP ViT-B/16", 101)]).unwrap();
        let gpu = centralized_latency(&i_gpu, "CLIP ViT-B/16", "server").unwrap();
        // Swap in the CPU-only server.
        let mut devices: Vec<_> = fleet.devices().to_vec();
        for d in &mut devices {
            if d.id.as_str() == "server" {
                *d = s2m3_net::device::DeviceSpec::server_without_gpu();
            }
        }
        fleet = Fleet::new(devices, fleet.topology().clone(), fleet.requester().clone()).unwrap();
        let i_cpu = Instance::on_fleet(fleet, &[("CLIP ViT-B/16", 101)]).unwrap();
        let cpu = centralized_latency(&i_cpu, "CLIP ViT-B/16", "server").unwrap();
        assert!(cpu > 2.0 * gpu, "gpu {gpu:.2} vs cpu {cpu:.2}");
    }
}
