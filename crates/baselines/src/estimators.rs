//! Optimus and DistMM estimates (Table XI).
//!
//! Both systems are closed-source multi-modal *training* frameworks; the
//! paper (footnote 3) estimates their inference latency as *ideal*
//! parallel performance, "proportionally reduced based on the number of
//! devices". We reproduce the same construction:
//!
//! - **Optimus** (VQA only): ideal tensor parallelism over the two
//!   fastest devices — every compute term of the sequential pipeline is
//!   halved, communication kept.
//! - **DistMM** (retrieval only): modality-separated placement with
//!   per-modality parallelism — operationally the same routing S2M3
//!   performs for a two-encoder model, which is why the paper's Table XI
//!   reports identical numbers for DistMM and S2M3 on retrieval.

use s2m3_core::error::CoreError;
use s2m3_core::objective::{encoder_paths, head_latency, total_latency};
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_models::zoo::Task;

/// Ideal tensor-parallelism factor Optimus is granted (two capable
/// devices in the edge fleet).
const OPTIMUS_TP: f64 = 2.0;

/// The Optimus estimate for a decoder-VQA model.
///
/// # Errors
///
/// [`CoreError::UnknownModel`] if `model` is not a deployed decoder-VQA
/// model; placement errors otherwise.
pub fn optimus_estimate(instance: &Instance, model: &str) -> Result<f64, CoreError> {
    let deployment = instance
        .deployment(model)
        .ok_or_else(|| CoreError::UnknownModel(model.to_string()))?;
    if deployment.model.task != Task::DecoderVqa {
        return Err(CoreError::UnknownModel(format!(
            "{model}: Optimus is designed only for VQA (paper Sec. VI)"
        )));
    }
    let request = instance.request(0, model)?;
    let plan = Plan::greedy(instance, vec![request.clone()])?;
    let route = &plan.routed[0].1;
    // Sequential pipeline with every compute term ideally sharded.
    let mut t = 0.0;
    for p in encoder_paths(instance, route, &request)? {
        t += p.input_tx + p.compute / OPTIMUS_TP + p.output_tx;
    }
    t += head_latency(instance, route, &request)? / OPTIMUS_TP;
    Ok(t)
}

/// The DistMM estimate for an image-text retrieval model.
///
/// # Errors
///
/// [`CoreError::UnknownModel`] if `model` is not a deployed retrieval
/// model; placement errors otherwise.
pub fn distmm_estimate(instance: &Instance, model: &str) -> Result<f64, CoreError> {
    let deployment = instance
        .deployment(model)
        .ok_or_else(|| CoreError::UnknownModel(model.to_string()))?;
    if deployment.model.task != Task::ImageTextRetrieval {
        return Err(CoreError::UnknownModel(format!(
            "{model}: DistMM only considers image-text retrieval (paper Sec. VI)"
        )));
    }
    let request = instance.request(0, model)?;
    let plan = Plan::greedy(instance, vec![request.clone()])?;
    total_latency(instance, &plan.routed[0].1, &request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_core::objective::total_latency;
    use s2m3_net::fleet::Fleet;

    #[test]
    fn optimus_beats_s2m3_on_vqa_as_in_table_xi() {
        // Paper: Optimus 1.57 vs S2M3 2.71 on Flint-v0.5-1B VQA.
        let i = Instance::on_fleet(Fleet::edge_testbed(), &[("Flint-v0.5-1B", 1)]).unwrap();
        let opt = optimus_estimate(&i, "Flint-v0.5-1B").unwrap();
        let q = i.request(0, "Flint-v0.5-1B").unwrap();
        let plan = Plan::greedy(&i, vec![q]).unwrap();
        let ours = total_latency(&i, &plan.routed[0].1, &plan.routed[0].0).unwrap();
        assert!(opt < ours, "optimus {opt:.2} vs s2m3 {ours:.2}");
        assert!(opt > 0.3 * ours, "ideal TP should not be absurdly fast");
    }

    #[test]
    fn distmm_ties_s2m3_on_retrieval_as_in_table_xi() {
        // Paper: DistMM 2.48 = S2M3 2.48.
        let i = Instance::on_fleet(Fleet::edge_testbed(), &[("CLIP ViT-B/16", 101)]).unwrap();
        let dist = distmm_estimate(&i, "CLIP ViT-B/16").unwrap();
        let q = i.request(0, "CLIP ViT-B/16").unwrap();
        let plan = Plan::greedy(&i, vec![q]).unwrap();
        let ours = total_latency(&i, &plan.routed[0].1, &plan.routed[0].0).unwrap();
        assert!((dist - ours).abs() < 1e-9);
    }

    #[test]
    fn estimators_reject_foreign_tasks() {
        let i = Instance::on_fleet(
            Fleet::edge_testbed(),
            &[("CLIP ViT-B/16", 101), ("Flint-v0.5-1B", 1)],
        )
        .unwrap();
        assert!(optimus_estimate(&i, "CLIP ViT-B/16").is_err());
        assert!(distmm_estimate(&i, "Flint-v0.5-1B").is_err());
    }
}
