//! # s2m3-baselines
//!
//! Every deployment the paper's evaluation compares S2M3 against:
//!
//! - [`centralized`]: the whole model on one device — the paper's
//!   *Centralized Cloud* (GPU server over the MAN) and *Local* (Jetson)
//!   baselines, plus any other single device of Table VII;
//! - [`megatron`]: Megatron-LM-style intra-module tensor parallelism,
//!   applied per functional module (Table XI) — capacity-proportional
//!   sharding with per-layer allreduce over the home network, no
//!   cross-encoder parallelism, no cross-task sharing;
//! - [`estimators`]: Optimus (VQA-only) and DistMM (retrieval-only)
//!   ideal-parallelism estimates, constructed exactly as the paper's
//!   footnote 3 does (the systems are closed-source, so their latency is
//!   estimated as ideal tensor/modality parallelism);
//! - [`ablations`]: S2M3 without per-request parallel routing and S2M3
//!   without module sharing (the Table VII / Table X counterfactuals).
//!
//! All baselines consume the same [`Instance`](s2m3_core::problem::Instance)
//! and cost model as S2M3 itself, so comparisons are apples-to-apples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod centralized;
pub mod estimators;
pub mod megatron;
