//! S2M3 ablations: the paper's own counterfactuals.
//!
//! - *w/o parallel processing* (Table VII): same greedy placement and
//!   routing, but encoders run one after another.
//! - *w/o sharing* (Table X): every task deploys dedicated module copies;
//!   no cross-task reuse, no cross-task queuing.

use s2m3_core::error::CoreError;
use s2m3_core::objective::{total_latency, total_latency_sequential};
use s2m3_core::plan::Plan;
use s2m3_core::problem::Instance;
use s2m3_sim::{simulate, SimConfig, SimError, SimReport};

/// Single-request S2M3 latency (greedy placement + parallel routing).
///
/// # Errors
///
/// Placement/routing errors as [`CoreError`].
pub fn s2m3_latency(instance: &Instance, model: &str) -> Result<f64, CoreError> {
    let q = instance.request(0, model)?;
    let plan = Plan::greedy(instance, vec![q.clone()])?;
    total_latency(instance, &plan.routed[0].1, &q)
}

/// Single-request latency with parallel routing disabled (encoders
/// sequential) — Table VII's "S2M3 (w/o Parallel Processing)".
///
/// # Errors
///
/// Placement/routing errors as [`CoreError`].
pub fn s2m3_no_parallel_latency(instance: &Instance, model: &str) -> Result<f64, CoreError> {
    let q = instance.request(0, model)?;
    let plan = Plan::greedy(instance, vec![q.clone()])?;
    total_latency_sequential(instance, &plan.routed[0].1, &q)
}

/// Simulates the multi-task burst (one simultaneous request per deployed
/// model) under **shared** modules: the Table X "w/ Sharing" column.
///
/// # Errors
///
/// Placement/simulation errors as [`SimError`].
pub fn shared_burst(instance: &Instance) -> Result<SimReport, SimError> {
    burst(instance)
}

/// The same burst with **dedicated** module copies per task: Table X's
/// "w/o Sharing" column. More memory, no cross-task queuing.
///
/// # Errors
///
/// Placement/simulation errors as [`SimError`]; dedicated placement can
/// also be memory-infeasible where sharing was not.
pub fn dedicated_burst(instance: &Instance) -> Result<SimReport, SimError> {
    burst(&instance.dedicated())
}

fn burst(instance: &Instance) -> Result<SimReport, SimError> {
    let requests: Vec<_> = instance
        .deployments()
        .iter()
        .enumerate()
        .map(|(k, d)| instance.request(k as u64, &d.model.name))
        .collect::<Result<_, _>>()
        .map_err(SimError::Core)?;
    let plan = Plan::greedy(instance, requests).map_err(SimError::Core)?;
    simulate(instance, &plan, &SimConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_net::fleet::Fleet;

    fn table_x_instance() -> Instance {
        Instance::on_fleet(
            Fleet::edge_testbed(),
            &[
                ("CLIP ViT-B/16", 101),
                ("Encoder-only VQA (Small)", 1),
                ("AlignBind-B", 16),
                ("CLIP-Classifier Food-101", 0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parallel_routing_helps_two_encoder_models() {
        let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
        let par = s2m3_latency(&i, "CLIP ViT-B/16").unwrap();
        let seq = s2m3_no_parallel_latency(&i, "CLIP ViT-B/16").unwrap();
        // Paper: 2.48 vs 3.03.
        assert!(seq > par + 0.05, "seq {seq:.2} vs par {par:.2}");
    }

    #[test]
    fn sharing_trades_latency_for_memory_as_in_table_x() {
        let i = table_x_instance();
        let shared = shared_burst(&i).unwrap();
        let dedicated = dedicated_burst(&i).unwrap();
        assert_eq!(shared.requests.len(), 4);
        assert_eq!(dedicated.requests.len(), 4);
        // Sharing queues simultaneous requests on common modules: max
        // latency with sharing exceeds the dedicated deployment's
        // (Table X: 4.97 vs 3.73).
        assert!(
            shared.max_latency() >= dedicated.max_latency(),
            "shared {:.2} vs dedicated {:.2}",
            shared.max_latency(),
            dedicated.max_latency()
        );
    }

    #[test]
    fn dedicated_burst_uses_more_memory() {
        let i = table_x_instance();
        let shared_params: u64 = i.distinct_modules().iter().map(|m| m.params).sum();
        let dedicated_params: u64 = i
            .dedicated()
            .distinct_modules()
            .iter()
            .map(|m| m.params)
            .sum();
        // 209M vs 543M (Table X).
        assert_eq!(shared_params / 1_000_000, 209);
        assert_eq!(dedicated_params / 1_000_000, 543);
    }
}
