//! Megatron-LM applied per functional module (Table XI's "Mega" column).
//!
//! Megatron-style tensor parallelism shards each weight matrix across
//! devices and synchronizes activations with an allreduce after every
//! attention/MLP block. Applied to a multi-modal model *per module* (the
//! paper's construction), it:
//!
//! - accelerates each module's FLOPs by the fleet's aggregate speed,
//! - pays per-layer allreduce over the home network (Wi-Fi latency ×
//!   2 syncs/layer — the cost that erases most of the speedup),
//! - still executes modules **sequentially** (no cross-encoder
//!   parallelism — the paper's key criticism), and
//! - cannot share modules across tasks (Table XI's memory column).

use s2m3_core::error::CoreError;
use s2m3_core::problem::Instance;
use s2m3_models::module::{ModuleKind, ModuleSpec};

/// Parameters per transformer block used to estimate layer counts
/// (ViT-B's 86M / 12 layers ≈ 7M; we use 5M to cover the conv towers).
const PARAMS_PER_LAYER: u64 = 5_000_000;
/// Layer-count clamp (tiny heads still sync a few times; giant LLMs
/// pipeline rather than sync every one of their dozens of layers).
const LAYER_CLAMP: (u64, u64) = (6, 32);
/// Devices slower than this fraction of the fastest group member are
/// excluded from the TP group (a straggler's shard would dominate every
/// round — standard practice is to shard over comparable devices only).
const STRAGGLER_FRACTION: f64 = 0.25;
/// Activation microbatch rows carried per allreduce.
const SYNC_ROWS: f64 = 8.0;
/// Fixed per-synchronization protocol cost, seconds.
const SYNC_FIXED_S: f64 = 0.015;

fn layers(m: &ModuleSpec) -> u64 {
    (m.params / PARAMS_PER_LAYER).clamp(LAYER_CLAMP.0, LAYER_CLAMP.1)
}

/// Latency of one request under per-module tensor parallelism across the
/// whole fleet.
///
/// # Errors
///
/// [`CoreError::UnknownModel`] on unknown models;
/// [`CoreError::EmptyFleet`] on an empty fleet.
pub fn megatron_latency(instance: &Instance, model: &str) -> Result<f64, CoreError> {
    let deployment = instance
        .deployment(model)
        .ok_or_else(|| CoreError::UnknownModel(model.to_string()))?;
    let devices = instance.fleet().devices();
    if devices.is_empty() {
        return Err(CoreError::EmptyFleet);
    }
    let profile = deployment.profile;
    let requester = instance.fleet().requester();

    // Worst pairwise one-way latency and bottleneck bandwidth within the
    // fleet (every allreduce ring crosses the slowest link).
    let mut max_lat = 0.0_f64;
    let mut min_bw = f64::INFINITY;
    for a in devices {
        for b in devices {
            if a.id == b.id {
                continue;
            }
            if let Ok(p) = instance.fleet().topology().path(&a.id, &b.id) {
                max_lat = max_lat.max(p.latency_s);
                min_bw = min_bw.min(p.bandwidth_bps);
            }
        }
    }
    if !min_bw.is_finite() {
        // Single-device fleet: degenerate to centralized.
        min_bw = 1.0e12;
    }

    // Input transfer (all raw inputs to the TP group; dominated by the
    // requester's uplink).
    let input_bytes: u64 = deployment
        .model
        .encoders()
        .iter()
        .map(|m| profile.input_bytes(m.kind))
        .sum();
    let first = &devices[0].id;
    let tx = instance
        .fleet()
        .topology()
        .transfer_time(requester, first, input_bytes)
        .map_err(CoreError::UnknownDevice)?;

    let mut total = tx;
    for m in deployment.model.modules() {
        let units = profile.units(m.kind);
        // TP group: devices within STRAGGLER_FRACTION of the fastest for
        // this module kind; aggregate their capacity-proportional shards.
        let fastest = devices
            .iter()
            .map(|d| d.speed_gflops * d.efficiency.factor(m.kind))
            .fold(0.0, f64::max);
        let group: Vec<_> = devices
            .iter()
            .filter(|d| {
                d.speed_gflops * d.efficiency.factor(m.kind) >= STRAGGLER_FRACTION * fastest
            })
            .collect();
        let agg_speed: f64 = group
            .iter()
            .map(|d| d.speed_gflops * d.efficiency.factor(m.kind))
            .sum();
        let max_exec = group
            .iter()
            .map(|d| d.exec_overhead_s + d.unit_overhead_s * units)
            .fold(0.0, f64::max);
        let compute = max_exec + m.gflops(units) / agg_speed;

        // Per-layer allreduce: 2 syncs per block, ring over the slowest
        // link, activation slab of up to SYNC_ROWS rows.
        let n = group.len().max(2) as f64;
        let rows = units.clamp(1.0, SYNC_ROWS);
        let bytes = rows * m.embed_dim.max(64) as f64 * 4.0;
        let ring = 2.0 * (n - 1.0) / n * bytes * 8.0 / min_bw;
        let per_sync = SYNC_FIXED_S + 2.0 * max_lat + ring;
        let syncs = if m.kind.is_encoder() || m.kind == ModuleKind::LanguageModel {
            2 * layers(m)
        } else {
            2 // heads are a single block
        };
        total += compute + syncs as f64 * per_sync;
    }
    Ok(total)
}

/// Megatron's deployed parameter count for a set of models: no module
/// sharing, so every model pays for its own copies (Table XI's memory
/// column).
pub fn megatron_params(instance: &Instance) -> u64 {
    instance
        .deployments()
        .iter()
        .map(|d| d.model.total_params())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_core::objective::total_latency;
    use s2m3_core::plan::Plan;
    use s2m3_net::fleet::Fleet;

    fn s2m3_latency(instance: &Instance, model: &str) -> f64 {
        let q = instance.request(0, model).unwrap();
        let plan = Plan::greedy(instance, vec![q]).unwrap();
        total_latency(instance, &plan.routed[0].1, &plan.routed[0].0).unwrap()
    }

    #[test]
    fn megatron_loses_to_s2m3_on_parallelizable_tasks() {
        // Table XI: Retrieval — Mega 3.03 vs S2M3 2.48;
        // Alignment — Mega 0.99 vs S2M3 0.55.
        for (model, c) in [("CLIP ViT-B/16", 101), ("AlignBind-B", 16)] {
            let i = Instance::on_fleet(Fleet::edge_testbed(), &[(model, c)]).unwrap();
            let mega = megatron_latency(&i, model).unwrap();
            let ours = s2m3_latency(&i, model);
            assert!(
                mega > ours,
                "{model}: megatron {mega:.2} must exceed S2M3 {ours:.2}"
            );
        }
    }

    #[test]
    fn megatron_retrieval_in_paper_regime() {
        let i = Instance::on_fleet(Fleet::edge_testbed(), &[("CLIP ViT-B/16", 101)]).unwrap();
        let mega = megatron_latency(&i, "CLIP ViT-B/16").unwrap();
        // Paper: 3.03 s.
        assert!((2.2..4.8).contains(&mega), "megatron retrieval {mega:.2}");
    }

    #[test]
    fn megatron_memory_matches_table_xi_no_sharing() {
        // Retrieval+Alignment: Mega 333M vs S2M3 209M.
        let i = Instance::on_fleet(
            Fleet::edge_testbed(),
            &[("CLIP ViT-B/16", 101), ("AlignBind-B", 16)],
        )
        .unwrap();
        assert_eq!(megatron_params(&i) / 1_000_000, 333);
        let zoo = s2m3_models::zoo::Zoo::standard();
        let shared = zoo.shared_params([
            zoo.model("CLIP ViT-B/16").unwrap(),
            zoo.model("AlignBind-B").unwrap(),
        ]) / 1_000_000;
        assert_eq!(shared, 209);
    }

    #[test]
    fn unknown_model_errors() {
        let i = Instance::single_model("CLIP ViT-B/16", 10).unwrap();
        assert!(megatron_latency(&i, "ghost").is_err());
    }
}
