//! Property tests for the sweep's two load-bearing invariants: the
//! report is byte-identical at any thread count, and the grid conserves
//! replicas (cells × seeds, each run exactly once).

use proptest::prelude::*;
use rayon_lite::ThreadPoolBuilder;

use s2m3_serve::{ServeScenario, StreamingConfig};

use crate::run::run_sweep_on;
use crate::spec::SweepSpec;

fn arb_spec() -> impl Strategy<Value = SweepSpec> {
    (
        1usize..=2, // seeds
        proptest::sample::subsequence(vec![0.5f64, 1.0, 3.0], 1..=2),
        proptest::sample::subsequence(vec![2usize, 3, 4], 1..=2),
        10usize..=30, // requests
        0usize..=1,   // memory-flat streaming mode
    )
        .prop_map(|(seeds, rate_scales, fleet_sizes, requests, streaming)| {
            let mut base = ServeScenario::churn_default();
            base.requests = requests;
            base.snapshot_every = 8;
            if streaming == 1 {
                base.streaming = Some(StreamingConfig::default());
            }
            SweepSpec {
                base,
                seeds,
                rate_scales,
                fleet_sizes,
                bin_s: 300.0,
                miss_budget: 0.01,
                threads: 1,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same grid at 1, 2, and 4 threads ⇒ byte-identical JSON report —
    /// in both latency-aggregation modes (`arb_spec` flips streaming),
    /// since per-replica sketches are merged in deterministic order.
    #[test]
    fn report_is_thread_count_invariant(spec in arb_spec()) {
        let mut reports = Vec::new();
        for threads in [1usize, 2, 4] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build();
            let report = run_sweep_on(&spec, &pool).unwrap();
            reports.push(report.to_json().unwrap());
        }
        prop_assert_eq!(&reports[0], &reports[1]);
        prop_assert_eq!(&reports[0], &reports[2]);
    }

    /// Replica conservation: every cell aggregates exactly `seeds`
    /// replicas and the report totals match the grid.
    #[test]
    fn replicas_are_conserved(spec in arb_spec()) {
        let pool = ThreadPoolBuilder::new().num_threads(2).build();
        let report = run_sweep_on(&spec, &pool).unwrap();
        prop_assert_eq!(report.cells.len(), spec.cell_count());
        prop_assert_eq!(report.replicas, spec.replica_count());
        prop_assert_eq!(report.seeds_per_cell, spec.seeds);
        for cell in &report.cells {
            prop_assert_eq!(cell.replicas, spec.seeds);
        }
        // One frontier point per distinct fleet size.
        let mut sizes = spec.fleet_sizes.clone();
        sizes.dedup();
        prop_assert_eq!(report.frontier.len(), sizes.len());
    }
}
