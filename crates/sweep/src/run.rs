//! Replica execution: the grid fanned over a work-stealing pool, with
//! results re-assembled in replica-index order so the aggregate is
//! byte-identical at any thread count.

use std::sync::Arc;

use rayon_lite::{ThreadPool, ThreadPoolBuilder};

use s2m3_serve::{prepare, ServeSession, SharedStart};

use crate::report::{
    aggregate_cell, capacity_frontier, cost_slo_frontier, CellReport, ReplicaSummary, SweepReport,
};
use crate::spec::SweepSpec;
use crate::SweepError;

/// One replica's work order: grid coordinates, the derived scenario,
/// and the cell-shared start (instance + interned tables + placement,
/// built once per fleet size and shared via [`Arc`]).
struct ReplicaJob {
    cell: usize,
    scenario: s2m3_serve::ServeScenario,
    shared: Arc<SharedStart>,
}

/// Runs the sweep on a fresh pool of `spec.threads` threads
/// (0 = all available cores).
///
/// # Errors
///
/// [`SweepError::BadSpec`] for an invalid grid; [`SweepError::Serve`]
/// when any replica fails to prepare or execute.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepReport, SweepError> {
    let pool = ThreadPoolBuilder::new().num_threads(spec.threads).build();
    run_sweep_on(spec, &pool)
}

/// Runs the sweep on a caller-provided pool.
///
/// The pool is an execution detail only: the returned report is
/// byte-identical for any pool size (the thread-invariance proptest
/// pins this).
///
/// # Errors
///
/// As [`run_sweep`].
pub fn run_sweep_on(spec: &SweepSpec, pool: &ThreadPool) -> Result<SweepReport, SweepError> {
    spec.validate()?;

    // Cells are fleet-size-major so one SharedStart (the replica-
    // invariant prefix: instance, interned view, greedy placement)
    // serves every rate scale and seed of that fleet size — rate
    // scaling touches arrivals only, which with_shared re-reads from
    // the scenario.
    let mut jobs: Vec<ReplicaJob> = Vec::with_capacity(spec.replica_count());
    let mut cells_meta: Vec<(usize, f64)> = Vec::with_capacity(spec.cell_count());
    for &fleet_size in &spec.fleet_sizes {
        let representative = spec.cell_scenario(spec.rate_scales[0], fleet_size, 0)?;
        let shared =
            Arc::new(prepare(&representative).map_err(|e| SweepError::Serve(e.to_string()))?);
        for &rate_scale in &spec.rate_scales {
            let cell = cells_meta.len();
            cells_meta.push((fleet_size, rate_scale));
            for seed_idx in 0..spec.seeds {
                jobs.push(ReplicaJob {
                    cell,
                    scenario: spec.cell_scenario(rate_scale, fleet_size, seed_idx)?,
                    shared: Arc::clone(&shared),
                });
            }
        }
    }

    let bin_s = spec.bin_s;
    // par_map returns results in job order regardless of which worker
    // ran what; each result carries its cell index so aggregation below
    // is a deterministic in-order pass.
    let outcomes = pool.par_map(
        jobs,
        move |job| -> Result<(usize, ReplicaSummary), String> {
            let mut session =
                ServeSession::with_shared(&job.scenario, &job.shared).map_err(|e| e.to_string())?;
            session.run_to_idle().map_err(|e| e.to_string())?;
            let report = session.finish();
            Ok((job.cell, ReplicaSummary::from_report(&report, bin_s)))
        },
    );

    let mut per_cell: Vec<Vec<ReplicaSummary>> = cells_meta.iter().map(|_| Vec::new()).collect();
    for outcome in outcomes {
        let (cell, summary) = outcome.map_err(SweepError::Serve)?;
        per_cell[cell].push(summary);
    }

    let cells: Vec<CellReport> = cells_meta
        .iter()
        .zip(&per_cell)
        .map(|(&(fleet_size, rate_scale), replicas)| {
            aggregate_cell(
                fleet_size,
                rate_scale,
                spec.offered_rate_per_s(rate_scale),
                replicas,
                bin_s,
            )
        })
        .collect();
    let frontier = capacity_frontier(&cells, spec.miss_budget);
    let points = cost_slo_frontier(&cells);
    let cost_slo = (!points.is_empty()).then_some(points);
    Ok(SweepReport {
        seed: spec.base.seed.clone(),
        seeds_per_cell: spec.seeds,
        replicas: spec.replica_count(),
        miss_budget: spec.miss_budget,
        bin_s: spec.bin_s,
        cells,
        frontier,
        cost_slo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_serve::ServeScenario;

    fn tiny_spec() -> SweepSpec {
        let mut base = ServeScenario::churn_default();
        base.requests = 40;
        base.snapshot_every = 10;
        SweepSpec {
            base,
            seeds: 2,
            rate_scales: vec![1.0, 4.0],
            fleet_sizes: vec![2, 4],
            bin_s: 200.0,
            miss_budget: 0.05,
            threads: 1,
        }
    }

    #[test]
    fn sweep_runs_the_full_grid() {
        let spec = tiny_spec();
        let report = run_sweep(&spec).unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.replicas, 8);
        assert!(report.cells.iter().all(|c| c.replicas == 2));
        assert_eq!(report.frontier.len(), 2);
        // Every replica produced time bands.
        assert!(report.cells.iter().all(|c| !c.bands.is_empty()));
    }

    #[test]
    fn same_spec_is_reproducible() {
        let spec = tiny_spec();
        let a = run_sweep(&spec).unwrap().to_json().unwrap();
        let b = run_sweep(&spec).unwrap().to_json().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_pool_matches_fresh_pool() {
        let spec = tiny_spec();
        let pool = ThreadPoolBuilder::new().num_threads(3).build();
        let a = run_sweep_on(&spec, &pool).unwrap().to_json().unwrap();
        let b = run_sweep(&spec).unwrap().to_json().unwrap();
        assert_eq!(a, b, "report never depends on the executing pool");
    }

    #[test]
    fn sharded_replicas_match_sequential_replicas() {
        // `base.threads` flows into every replica scenario, so each
        // replica serves on the sharded event loop — and the sweep
        // report must still be byte-identical to sequential replicas
        // (the serve-level contract composed with the pool-level one).
        let sequential = tiny_spec();
        let mut sharded = tiny_spec();
        sharded.base.threads = 2;
        let a = run_sweep(&sequential).unwrap().to_json().unwrap();
        let b = run_sweep(&sharded).unwrap().to_json().unwrap();
        assert_eq!(a, b, "sharded replicas must not change sweep bytes");
    }

    #[test]
    fn budgeted_base_scenario_flows_into_every_cell() {
        let mut spec = tiny_spec();
        spec.base.budget = Some(s2m3_serve::BudgetPolicy::device_seconds(2.0));
        let report = run_sweep(&spec).unwrap();
        assert_eq!(
            report.cost_slo.as_ref().map(Vec::len),
            Some(report.cells.len())
        );
        for c in &report.cells {
            // Reserve-at-dispatch accounting never lets a window
            // overspend, so adherence is 1.0 across the grid.
            assert_eq!(c.scalars.budget_adherence_mean, Some(1.0));
            assert!(c.scalars.budget_spend_mean_per_window.unwrap() <= 2.0 + 1e-9);
        }
        let text = report.render_summary();
        assert!(text.contains("cost x SLO frontier"), "{text}");
        // And the budget-free grid keeps the section out entirely.
        let free = run_sweep(&tiny_spec()).unwrap();
        assert!(free.cost_slo.is_none());
    }

    #[test]
    fn invalid_spec_is_rejected_before_any_work() {
        let mut spec = tiny_spec();
        spec.rate_scales.clear();
        assert!(matches!(run_sweep(&spec), Err(SweepError::BadSpec(_))));
    }
}
