//! Cross-replica aggregation: per-cell scalar summaries, per-timestep
//! distribution bands, and the capacity frontier.

use serde::{Deserialize, Serialize};

use s2m3_serve::ServeReport;

/// p50/p95/p99 of one metric across a cell's replicas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Band {
    /// Median across replicas.
    pub p50: f64,
    /// 95th percentile across replicas.
    pub p95: f64,
    /// 99th percentile across replicas.
    pub p99: f64,
}

impl Band {
    /// Ceil-rank percentile bands over `samples` (order irrelevant —
    /// the values are sorted here, which is what makes the aggregate
    /// independent of replica completion order).
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pick = |q: f64| {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Some(Band {
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
        })
    }
}

/// Distribution bands of the serving metrics in one aggregation bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeBand {
    /// End of the bin, virtual seconds.
    pub t_s: f64,
    /// Replicas that produced a window snapshot in this bin.
    pub replicas: usize,
    /// p95 request latency across replicas, seconds.
    pub latency_p95_s: Band,
    /// Rolling deadline-miss rate across replicas.
    pub miss_rate: Band,
    /// Fleet utilization across replicas.
    pub utilization: Band,
}

/// Scalar whole-run summaries of one cell, averaged over replicas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellScalars {
    /// Mean deadline-miss rate: (late + shed) / arrived.
    pub miss_rate_mean: f64,
    /// Worst replica's miss rate.
    pub miss_rate_max: f64,
    /// Mean of per-replica p95 latency, seconds.
    pub latency_p95_mean_s: f64,
    /// Mean completion throughput, requests per virtual second.
    pub throughput_mean_per_s: f64,
    /// Mean shed count.
    pub shed_mean: f64,
    /// Mean of per-replica makespan, virtual seconds.
    pub makespan_mean_s: f64,
}

/// One (rate-scale × fleet-size) grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Active devices at t = 0.
    pub fleet_size: usize,
    /// Arrival-rate multiplier applied to the base workload.
    pub rate_scale: f64,
    /// Mean offered arrival rate, requests/s (`null` when the workload
    /// has no mean rate, e.g. simultaneous bursts).
    pub offered_rate_per_s: Option<f64>,
    /// Replicas aggregated into this cell.
    pub replicas: usize,
    /// Whole-run scalar summaries.
    pub scalars: CellScalars,
    /// Per-timestep distribution bands, in time order.
    pub bands: Vec<TimeBand>,
}

/// The largest sustainable rate scale for one fleet size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Active devices at t = 0.
    pub fleet_size: usize,
    /// Largest swept rate scale whose mean miss rate stayed within the
    /// budget (`null` when even the smallest scale breached it).
    pub max_rate_scale: Option<f64>,
    /// The offered rate at that scale, requests/s.
    pub max_rate_per_s: Option<f64>,
    /// Mean miss rate observed at the frontier scale.
    pub miss_rate: Option<f64>,
}

/// The deterministic product of a sweep: same spec ⇒ byte-identical
/// JSON at any thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Base seed label the replica seeds derive from.
    pub seed: String,
    /// Replicas per cell.
    pub seeds_per_cell: usize,
    /// Total replicas executed.
    pub replicas: usize,
    /// Miss budget the frontier was computed against.
    pub miss_budget: f64,
    /// Aggregation bin width, virtual seconds.
    pub bin_s: f64,
    /// Grid cells, fleet-size-major then rate-scale order.
    pub cells: Vec<CellReport>,
    /// Max sustainable rate per fleet size (the capacity frontier).
    pub frontier: Vec<FrontierPoint>,
}

impl SweepReport {
    /// JSON export.
    ///
    /// # Errors
    ///
    /// Propagates serialization failure (not expected for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Propagates the parse failure.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Human-readable frontier + per-cell table.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sweep  seed {}  {} cells x {} seeds = {} replicas\n",
            self.seed,
            self.cells.len(),
            self.seeds_per_cell,
            self.replicas
        ));
        out.push_str(&format!(
            "{:>6}  {:>6}  {:>9}  {:>9}  {:>9}  {:>9}\n",
            "fleet", "scale", "rate/s", "miss", "p95 s", "thru/s"
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:>6}  {:>6.2}  {:>9}  {:>8.2}%  {:>9.3}  {:>9.3}\n",
                c.fleet_size,
                c.rate_scale,
                c.offered_rate_per_s
                    .map_or_else(|| "-".to_string(), |r| format!("{r:.3}")),
                c.scalars.miss_rate_mean * 100.0,
                c.scalars.latency_p95_mean_s,
                c.scalars.throughput_mean_per_s,
            ));
        }
        out.push_str(&format!(
            "capacity frontier (miss <= {:.2}%):\n",
            self.miss_budget * 100.0
        ));
        for f in &self.frontier {
            match f.max_rate_scale {
                Some(scale) => out.push_str(&format!(
                    "  {} devices: up to x{:.2}{} ({:.2}% miss)\n",
                    f.fleet_size,
                    scale,
                    f.max_rate_per_s
                        .map_or_else(String::new, |r| format!(" = {r:.3} req/s")),
                    f.miss_rate.unwrap_or(0.0) * 100.0,
                )),
                None => out.push_str(&format!(
                    "  {} devices: no swept rate met the budget\n",
                    f.fleet_size
                )),
            }
        }
        out
    }
}

/// One replica's contribution to its cell: the scalars plus the last
/// window snapshot per time bin, reduced from the full [`ServeReport`]
/// so the sweep never holds per-request data for the whole grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSummary {
    /// Whole-run deadline-miss rate.
    pub miss_rate: f64,
    /// p95 latency over completed requests, seconds.
    pub latency_p95_s: f64,
    /// Completion throughput, requests per virtual second.
    pub throughput_per_s: f64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Virtual time when the last request finished, seconds.
    pub makespan_s: f64,
    /// `(bin index, latency p95, miss rate, utilization)` — the last
    /// window snapshot falling in each bin, in bin order.
    pub bins: Vec<(usize, f64, f64, f64)>,
}

impl ReplicaSummary {
    /// Reduces a full serving report to the sweep's per-replica view,
    /// binning window snapshots at `bin_s`.
    pub fn from_report(report: &ServeReport, bin_s: f64) -> Self {
        let mut bins: Vec<(usize, f64, f64, f64)> = Vec::new();
        for w in &report.windows {
            let idx = (w.at_s / bin_s).floor() as usize;
            let entry = (idx, w.p95_s, w.miss_rate, w.utilization);
            match bins.last_mut() {
                // Later snapshot in the same bin wins: it reflects the
                // window state at the bin boundary.
                Some(last) if last.0 == idx => *last = entry,
                _ => bins.push(entry),
            }
        }
        ReplicaSummary {
            miss_rate: report.miss_rate,
            latency_p95_s: report.latency.p95_s,
            throughput_per_s: report.throughput_per_s,
            shed: report.shed,
            makespan_s: report.makespan_s,
            bins,
        }
    }
}

/// Aggregates one cell's replicas (in replica-index order — the caller
/// guarantees the slice order, which fixes every floating-point sum).
pub fn aggregate_cell(
    fleet_size: usize,
    rate_scale: f64,
    offered_rate_per_s: Option<f64>,
    replicas: &[ReplicaSummary],
    bin_s: f64,
) -> CellReport {
    let n = replicas.len().max(1) as f64;
    let scalars = CellScalars {
        miss_rate_mean: replicas.iter().map(|r| r.miss_rate).sum::<f64>() / n,
        miss_rate_max: replicas.iter().map(|r| r.miss_rate).fold(0.0, f64::max),
        latency_p95_mean_s: replicas.iter().map(|r| r.latency_p95_s).sum::<f64>() / n,
        throughput_mean_per_s: replicas.iter().map(|r| r.throughput_per_s).sum::<f64>() / n,
        shed_mean: replicas.iter().map(|r| r.shed as f64).sum::<f64>() / n,
        makespan_mean_s: replicas.iter().map(|r| r.makespan_s).sum::<f64>() / n,
    };
    let max_bin = replicas
        .iter()
        .flat_map(|r| r.bins.iter().map(|b| b.0))
        .max();
    let mut bands = Vec::new();
    if let Some(max_bin) = max_bin {
        for idx in 0..=max_bin {
            // Replica-index order again: each replica contributes at
            // most one snapshot per bin.
            let mut lat = Vec::new();
            let mut miss = Vec::new();
            let mut util = Vec::new();
            for r in replicas {
                if let Some(b) = r.bins.iter().find(|b| b.0 == idx) {
                    lat.push(b.1);
                    miss.push(b.2);
                    util.push(b.3);
                }
            }
            let (Some(latency_p95_s), Some(miss_rate), Some(utilization)) = (
                Band::from_samples(&lat),
                Band::from_samples(&miss),
                Band::from_samples(&util),
            ) else {
                continue;
            };
            bands.push(TimeBand {
                t_s: (idx + 1) as f64 * bin_s,
                replicas: lat.len(),
                latency_p95_s,
                miss_rate,
                utilization,
            });
        }
    }
    CellReport {
        fleet_size,
        rate_scale,
        offered_rate_per_s,
        replicas: replicas.len(),
        scalars,
        bands,
    }
}

/// Scans each fleet size's cells in ascending rate-scale order and
/// keeps the largest scale whose mean miss rate stays within `budget`.
pub fn capacity_frontier(cells: &[CellReport], budget: f64) -> Vec<FrontierPoint> {
    let mut sizes: Vec<usize> = cells.iter().map(|c| c.fleet_size).collect();
    sizes.dedup();
    sizes
        .into_iter()
        .map(|fleet_size| {
            let mut row: Vec<&CellReport> = cells
                .iter()
                .filter(|c| c.fleet_size == fleet_size)
                .collect();
            row.sort_by(|a, b| {
                a.rate_scale
                    .partial_cmp(&b.rate_scale)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let best = row
                .iter()
                .take_while(|c| c.scalars.miss_rate_mean <= budget)
                .last();
            FrontierPoint {
                fleet_size,
                max_rate_scale: best.map(|c| c.rate_scale),
                max_rate_per_s: best.and_then(|c| c.offered_rate_per_s),
                miss_rate: best.map(|c| c.scalars.miss_rate_mean),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_percentiles_use_ceil_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let b = Band::from_samples(&samples).unwrap();
        assert_eq!(b.p50, 50.0);
        assert_eq!(b.p95, 95.0);
        assert_eq!(b.p99, 99.0);
        let one = Band::from_samples(&[7.0]).unwrap();
        assert_eq!((one.p50, one.p95, one.p99), (7.0, 7.0, 7.0));
        assert!(Band::from_samples(&[]).is_none());
    }

    #[test]
    fn band_is_order_independent() {
        let a = Band::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        let b = Band::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    fn summary(miss: f64, bins: Vec<(usize, f64, f64, f64)>) -> ReplicaSummary {
        ReplicaSummary {
            miss_rate: miss,
            latency_p95_s: 1.0,
            throughput_per_s: 2.0,
            shed: 1,
            makespan_s: 100.0,
            bins,
        }
    }

    #[test]
    fn aggregate_bins_align_across_replicas() {
        let cell = aggregate_cell(
            3,
            1.0,
            Some(0.3),
            &[
                summary(0.0, vec![(0, 1.0, 0.0, 0.5), (1, 2.0, 0.1, 0.6)]),
                summary(0.2, vec![(0, 3.0, 0.0, 0.7)]),
            ],
            600.0,
        );
        assert_eq!(cell.replicas, 2);
        assert_eq!(cell.bands.len(), 2);
        assert_eq!(cell.bands[0].t_s, 600.0);
        assert_eq!(cell.bands[0].replicas, 2);
        assert_eq!(cell.bands[1].replicas, 1);
        assert!((cell.scalars.miss_rate_mean - 0.1).abs() < 1e-12);
        assert_eq!(cell.scalars.miss_rate_max, 0.2);
    }

    fn cell(fleet: usize, scale: f64, miss: f64) -> CellReport {
        CellReport {
            fleet_size: fleet,
            rate_scale: scale,
            offered_rate_per_s: Some(0.3 * scale),
            replicas: 1,
            scalars: CellScalars {
                miss_rate_mean: miss,
                miss_rate_max: miss,
                latency_p95_mean_s: 1.0,
                throughput_mean_per_s: 1.0,
                shed_mean: 0.0,
                makespan_mean_s: 10.0,
            },
            bands: Vec::new(),
        }
    }

    #[test]
    fn frontier_finds_largest_sustainable_scale() {
        let cells = vec![
            cell(2, 0.5, 0.0),
            cell(2, 1.0, 0.005),
            cell(2, 2.0, 0.3),
            cell(4, 0.5, 0.0),
            cell(4, 1.0, 0.0),
            cell(4, 2.0, 0.002),
        ];
        let f = capacity_frontier(&cells, 0.01);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].fleet_size, 2);
        assert_eq!(f[0].max_rate_scale, Some(1.0));
        assert_eq!(f[1].max_rate_scale, Some(2.0));
        assert_eq!(f[1].max_rate_per_s, Some(0.6));
    }

    #[test]
    fn frontier_reports_unsustainable_rows_as_none() {
        let f = capacity_frontier(&[cell(2, 0.5, 0.9)], 0.01);
        assert_eq!(f[0].max_rate_scale, None);
        assert_eq!(f[0].miss_rate, None);
    }

    #[test]
    fn report_json_roundtrip() {
        let report = SweepReport {
            seed: "s".into(),
            seeds_per_cell: 1,
            replicas: 1,
            miss_budget: 0.01,
            bin_s: 600.0,
            cells: vec![cell(2, 1.0, 0.0)],
            frontier: capacity_frontier(&[cell(2, 1.0, 0.0)], 0.01),
        };
        let back = SweepReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
        let text = report.render_summary();
        assert!(text.contains("capacity frontier"));
        assert!(text.contains("2 devices"));
    }
}
