//! Cross-replica aggregation: per-cell scalar summaries, per-timestep
//! distribution bands, and the capacity frontier.

use serde::{Deserialize, Serialize};

use s2m3_serve::{ReplanRecord, ServeReport, WindowSnapshot};

/// p50/p95/p99 of one metric across a cell's replicas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Band {
    /// Median across replicas.
    pub p50: f64,
    /// 95th percentile across replicas.
    pub p95: f64,
    /// 99th percentile across replicas.
    pub p99: f64,
}

impl Band {
    /// Ceil-rank percentile bands over `samples` (order irrelevant —
    /// the values are sorted here, which is what makes the aggregate
    /// independent of replica completion order).
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pick = |q: f64| {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Some(Band {
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
        })
    }
}

/// Distribution bands of the serving metrics in one aggregation bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeBand {
    /// End of the bin, virtual seconds.
    pub t_s: f64,
    /// Replicas that produced a window snapshot in this bin.
    pub replicas: usize,
    /// p95 request latency across replicas, seconds.
    pub latency_p95_s: Band,
    /// Rolling deadline-miss rate across replicas.
    pub miss_rate: Band,
    /// Fleet utilization across replicas.
    pub utilization: Band,
}

/// A 95% confidence interval from the replica-indexed bootstrap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ci95 {
    /// Lower bound (2.5th percentile of the bootstrap distribution).
    pub lo: f64,
    /// Upper bound (97.5th percentile of the bootstrap distribution).
    pub hi: f64,
}

/// Bootstrap resamples per interval. Enough for stable 2.5/97.5
/// percentile ranks; small enough that aggregation stays trivial next
/// to replica execution.
const BOOTSTRAP_RESAMPLES: usize = 200;

/// 95% CI on the mean of `samples` via a deterministic bootstrap.
///
/// Resample `b` draws its indices from a SplitMix64 stream seeded by
/// `b` alone, so the interval depends only on the sample values *in
/// slice order* — and cells aggregate replicas in replica-index order,
/// which makes the CI byte-identical at any sweep thread count. `None`
/// when `samples` is empty.
#[must_use]
pub fn bootstrap_ci95(samples: &[f64]) -> Option<Ci95> {
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    if samples.is_empty() {
        return None;
    }
    let n = samples.len();
    let mut means = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
    for b in 0..BOOTSTRAP_RESAMPLES {
        let mut state = (b as u64).wrapping_mul(0xa076_1d64_78bd_642f);
        let mut sum = 0.0;
        for _ in 0..n {
            sum += samples[(splitmix64(&mut state) % n as u64) as usize];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pick = |q: f64| {
        let rank = (q * means.len() as f64).ceil() as usize;
        means[rank.clamp(1, means.len()) - 1]
    };
    Some(Ci95 {
        lo: pick(0.025),
        hi: pick(0.975),
    })
}

/// One replica's replan gain: the drop in rolling deadline-miss rate
/// across its accepted replans. For each accepted replan at time `t`,
/// the gain is (mean window miss rate over `[t − horizon, t)`) minus
/// (mean over `[t, t + horizon)`) — positive when replanning helped.
/// The replica's gain averages over the accepted replans that have
/// window snapshots on both sides; `None` when none do (including runs
/// that never accepted a replan).
#[must_use]
pub fn replan_gain(
    replans: &[ReplanRecord],
    windows: &[WindowSnapshot],
    horizon_s: f64,
) -> Option<f64> {
    let mut gains = Vec::new();
    for r in replans.iter().filter(|r| r.accepted) {
        let mean_miss = |lo: f64, hi: f64| {
            let vals: Vec<f64> = windows
                .iter()
                .filter(|w| w.at_s >= lo && w.at_s < hi)
                .map(|w| w.miss_rate)
                .collect();
            (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
        };
        if let (Some(before), Some(after)) = (
            mean_miss(r.at_s - horizon_s, r.at_s),
            mean_miss(r.at_s, r.at_s + horizon_s),
        ) {
            gains.push(before - after);
        }
    }
    (!gains.is_empty()).then(|| gains.iter().sum::<f64>() / gains.len() as f64)
}

/// Scalar whole-run summaries of one cell, averaged over replicas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellScalars {
    /// Mean deadline-miss rate: (late + shed) / arrived.
    pub miss_rate_mean: f64,
    /// 95% bootstrap CI on the mean miss rate (`null` for empty cells).
    #[serde(default)]
    pub miss_rate_ci95: Option<Ci95>,
    /// Worst replica's miss rate.
    pub miss_rate_max: f64,
    /// Mean replan gain over replicas with a measurable gain (`null`
    /// when no replica accepted a replan with windows on both sides).
    #[serde(default)]
    pub replan_gain_mean: Option<f64>,
    /// 95% bootstrap CI on the mean replan gain.
    #[serde(default)]
    pub replan_gain_ci95: Option<Ci95>,
    /// Mean of per-replica p95 latency, seconds.
    pub latency_p95_mean_s: f64,
    /// Mean completion throughput, requests per virtual second.
    pub throughput_mean_per_s: f64,
    /// Mean shed count.
    pub shed_mean: f64,
    /// Mean of per-replica makespan, virtual seconds.
    pub makespan_mean_s: f64,
    /// Mean budget adherence (fraction of windows at or under the cap)
    /// over replicas that served under a budget; `null` when none did.
    #[serde(default)]
    pub budget_adherence_mean: Option<f64>,
    /// p50/p95/p99 of per-replica budget adherence.
    #[serde(default)]
    pub budget_adherence_band: Option<Band>,
    /// Mean per-window budget spend across budgeted replicas.
    #[serde(default)]
    pub budget_spend_mean_per_window: Option<f64>,
    /// Mean total queueing delay charged to the budget gate, seconds.
    #[serde(default)]
    pub budget_latency_price_mean_s: Option<f64>,
}

/// One (rate-scale × fleet-size) grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Active devices at t = 0.
    pub fleet_size: usize,
    /// Arrival-rate multiplier applied to the base workload.
    pub rate_scale: f64,
    /// Mean offered arrival rate, requests/s (`null` when the workload
    /// has no mean rate, e.g. simultaneous bursts).
    pub offered_rate_per_s: Option<f64>,
    /// Replicas aggregated into this cell.
    pub replicas: usize,
    /// Whole-run scalar summaries.
    pub scalars: CellScalars,
    /// Per-timestep distribution bands, in time order.
    pub bands: Vec<TimeBand>,
}

/// The largest sustainable rate scale for one fleet size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Active devices at t = 0.
    pub fleet_size: usize,
    /// Largest swept rate scale whose mean miss rate stayed within the
    /// budget (`null` when even the smallest scale breached it).
    pub max_rate_scale: Option<f64>,
    /// The offered rate at that scale, requests/s.
    pub max_rate_per_s: Option<f64>,
    /// Mean miss rate observed at the frontier scale.
    pub miss_rate: Option<f64>,
    /// 95% bootstrap CI on that miss rate.
    #[serde(default)]
    pub miss_rate_ci95: Option<Ci95>,
    /// Mean replan gain at the frontier scale (see
    /// [`CellScalars::replan_gain_mean`]).
    #[serde(default)]
    pub replan_gain: Option<f64>,
    /// 95% bootstrap CI on that replan gain.
    #[serde(default)]
    pub replan_gain_ci95: Option<Ci95>,
}

/// One cell's position on the cost × SLO frontier: what the budget
/// bought (per-window spend, adherence) against what it cost in
/// service quality (p95 latency, miss rate, queueing delay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostSloPoint {
    /// Active devices at t = 0.
    pub fleet_size: usize,
    /// Arrival-rate multiplier applied to the base workload.
    pub rate_scale: f64,
    /// Mean per-window budget spend across the cell's replicas.
    pub spend_per_window: f64,
    /// Mean fraction of windows at or under the cap.
    pub adherence: f64,
    /// Mean of per-replica p95 latency, seconds.
    pub latency_p95_s: f64,
    /// Mean deadline-miss rate.
    pub miss_rate: f64,
    /// Mean total queueing delay charged to the budget gate, seconds.
    pub latency_price_s: f64,
}

/// The deterministic product of a sweep: same spec ⇒ byte-identical
/// JSON at any thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Base seed label the replica seeds derive from.
    pub seed: String,
    /// Replicas per cell.
    pub seeds_per_cell: usize,
    /// Total replicas executed.
    pub replicas: usize,
    /// Miss budget the frontier was computed against.
    pub miss_budget: f64,
    /// Aggregation bin width, virtual seconds.
    pub bin_s: f64,
    /// Grid cells, fleet-size-major then rate-scale order.
    pub cells: Vec<CellReport>,
    /// Max sustainable rate per fleet size (the capacity frontier).
    pub frontier: Vec<FrontierPoint>,
    /// Cost × SLO frontier: one point per cell whose replicas served
    /// under a budget, in cell order. `None` for budget-free sweeps
    /// (an `Option` so pre-budget report JSON still parses).
    #[serde(default)]
    pub cost_slo: Option<Vec<CostSloPoint>>,
}

impl SweepReport {
    /// JSON export.
    ///
    /// # Errors
    ///
    /// Propagates serialization failure (not expected for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Propagates the parse failure.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Human-readable frontier + per-cell table.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sweep  seed {}  {} cells x {} seeds = {} replicas\n",
            self.seed,
            self.cells.len(),
            self.seeds_per_cell,
            self.replicas
        ));
        out.push_str(&format!(
            "{:>6}  {:>6}  {:>9}  {:>9}  {:>17}  {:>9}  {:>9}  {:>15}\n",
            "fleet", "scale", "rate/s", "miss", "miss 95% CI", "p95 s", "thru/s", "replan gain"
        ));
        let pct_ci = |ci: Option<Ci95>| {
            ci.map_or_else(
                || "-".to_string(),
                |c| format!("[{:.2}, {:.2}]%", c.lo * 100.0, c.hi * 100.0),
            )
        };
        for c in &self.cells {
            let gain = match (c.scalars.replan_gain_mean, c.scalars.replan_gain_ci95) {
                (Some(g), Some(ci)) => {
                    format!(
                        "{:+.2} [{:+.2},{:+.2}]pp",
                        g * 100.0,
                        ci.lo * 100.0,
                        ci.hi * 100.0
                    )
                }
                _ => "-".to_string(),
            };
            out.push_str(&format!(
                "{:>6}  {:>6.2}  {:>9}  {:>8.2}%  {:>17}  {:>9.3}  {:>9.3}  {:>15}\n",
                c.fleet_size,
                c.rate_scale,
                c.offered_rate_per_s
                    .map_or_else(|| "-".to_string(), |r| format!("{r:.3}")),
                c.scalars.miss_rate_mean * 100.0,
                pct_ci(c.scalars.miss_rate_ci95),
                c.scalars.latency_p95_mean_s,
                c.scalars.throughput_mean_per_s,
                gain,
            ));
        }
        out.push_str(&format!(
            "capacity frontier (miss <= {:.2}%):\n",
            self.miss_budget * 100.0
        ));
        for f in &self.frontier {
            match f.max_rate_scale {
                Some(scale) => out.push_str(&format!(
                    "  {} devices: up to x{:.2}{} ({:.2}% miss{}{})\n",
                    f.fleet_size,
                    scale,
                    f.max_rate_per_s
                        .map_or_else(String::new, |r| format!(" = {r:.3} req/s")),
                    f.miss_rate.unwrap_or(0.0) * 100.0,
                    f.miss_rate_ci95.map_or_else(String::new, |ci| format!(
                        ", 95% CI [{:.2}, {:.2}]%",
                        ci.lo * 100.0,
                        ci.hi * 100.0
                    )),
                    match (f.replan_gain, f.replan_gain_ci95) {
                        (Some(g), Some(ci)) => format!(
                            ", replan gain {:+.2}pp [{:+.2}, {:+.2}]",
                            g * 100.0,
                            ci.lo * 100.0,
                            ci.hi * 100.0
                        ),
                        _ => String::new(),
                    },
                )),
                None => out.push_str(&format!(
                    "  {} devices: no swept rate met the budget\n",
                    f.fleet_size
                )),
            }
        }
        if let Some(points) = self.cost_slo.as_deref().filter(|p| !p.is_empty()) {
            out.push_str("cost x SLO frontier:\n");
            for p in points {
                out.push_str(&format!(
                    "  {} devices x{:.2}: spend {:.2}/window  adherence {:.1}%  p95 {:.3} s  miss {:.2}%  latency price {:.1} s\n",
                    p.fleet_size,
                    p.rate_scale,
                    p.spend_per_window,
                    p.adherence * 100.0,
                    p.latency_p95_s,
                    p.miss_rate * 100.0,
                    p.latency_price_s,
                ));
            }
        }
        out
    }
}

/// One replica's contribution to its cell: the scalars plus the last
/// window snapshot per time bin, reduced from the full [`ServeReport`]
/// so the sweep never holds per-request data for the whole grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSummary {
    /// Whole-run deadline-miss rate.
    pub miss_rate: f64,
    /// p95 latency over completed requests, seconds.
    pub latency_p95_s: f64,
    /// Completion throughput, requests per virtual second.
    pub throughput_per_s: f64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Virtual time when the last request finished, seconds.
    pub makespan_s: f64,
    /// Miss-rate drop across accepted replans (see [`replan_gain`]);
    /// `None` when the run has no measurable replan.
    pub replan_gain: Option<f64>,
    /// Budget adherence (fraction of windows at or under the cap);
    /// `None` when the replica served without a budget.
    pub budget_adherence: Option<f64>,
    /// Mean per-window budget spend.
    pub budget_spend_per_window: Option<f64>,
    /// Total queueing delay charged to the budget gate, seconds.
    pub budget_latency_price_s: Option<f64>,
    /// `(bin index, latency p95, miss rate, utilization)` — the last
    /// window snapshot falling in each bin, in bin order.
    pub bins: Vec<(usize, f64, f64, f64)>,
}

impl ReplicaSummary {
    /// Reduces a full serving report to the sweep's per-replica view,
    /// binning window snapshots at `bin_s`.
    pub fn from_report(report: &ServeReport, bin_s: f64) -> Self {
        let mut bins: Vec<(usize, f64, f64, f64)> = Vec::new();
        for w in &report.windows {
            let idx = (w.at_s / bin_s).floor() as usize;
            let entry = (idx, w.p95_s, w.miss_rate, w.utilization);
            match bins.last_mut() {
                // Later snapshot in the same bin wins: it reflects the
                // window state at the bin boundary.
                Some(last) if last.0 == idx => *last = entry,
                _ => bins.push(entry),
            }
        }
        let budget = report.budget.as_ref();
        ReplicaSummary {
            miss_rate: report.miss_rate,
            latency_p95_s: report.latency.p95_s,
            throughput_per_s: report.throughput_per_s,
            shed: report.shed,
            makespan_s: report.makespan_s,
            replan_gain: replan_gain(&report.replans, &report.windows, bin_s),
            budget_adherence: budget.map(|b| b.adherence),
            budget_spend_per_window: budget.map(|b| b.spend_total / b.windows_total.max(1) as f64),
            budget_latency_price_s: budget.map(|b| b.latency_price_s),
            bins,
        }
    }
}

/// Aggregates one cell's replicas (in replica-index order — the caller
/// guarantees the slice order, which fixes every floating-point sum).
pub fn aggregate_cell(
    fleet_size: usize,
    rate_scale: f64,
    offered_rate_per_s: Option<f64>,
    replicas: &[ReplicaSummary],
    bin_s: f64,
) -> CellReport {
    let n = replicas.len().max(1) as f64;
    // Replica-index order fixes both the float sums and the bootstrap
    // index stream, so these scalars are thread-count-invariant.
    let miss: Vec<f64> = replicas.iter().map(|r| r.miss_rate).collect();
    let gains: Vec<f64> = replicas.iter().filter_map(|r| r.replan_gain).collect();
    let adherence: Vec<f64> = replicas.iter().filter_map(|r| r.budget_adherence).collect();
    let mean_of =
        |vals: &[f64]| (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64);
    let spends: Vec<f64> = replicas
        .iter()
        .filter_map(|r| r.budget_spend_per_window)
        .collect();
    let prices: Vec<f64> = replicas
        .iter()
        .filter_map(|r| r.budget_latency_price_s)
        .collect();
    let scalars = CellScalars {
        miss_rate_mean: replicas.iter().map(|r| r.miss_rate).sum::<f64>() / n,
        miss_rate_ci95: bootstrap_ci95(&miss),
        miss_rate_max: replicas.iter().map(|r| r.miss_rate).fold(0.0, f64::max),
        replan_gain_mean: (!gains.is_empty())
            .then(|| gains.iter().sum::<f64>() / gains.len() as f64),
        replan_gain_ci95: bootstrap_ci95(&gains),
        latency_p95_mean_s: replicas.iter().map(|r| r.latency_p95_s).sum::<f64>() / n,
        throughput_mean_per_s: replicas.iter().map(|r| r.throughput_per_s).sum::<f64>() / n,
        shed_mean: replicas.iter().map(|r| r.shed as f64).sum::<f64>() / n,
        makespan_mean_s: replicas.iter().map(|r| r.makespan_s).sum::<f64>() / n,
        budget_adherence_mean: mean_of(&adherence),
        budget_adherence_band: Band::from_samples(&adherence),
        budget_spend_mean_per_window: mean_of(&spends),
        budget_latency_price_mean_s: mean_of(&prices),
    };
    let max_bin = replicas
        .iter()
        .flat_map(|r| r.bins.iter().map(|b| b.0))
        .max();
    let mut bands = Vec::new();
    if let Some(max_bin) = max_bin {
        for idx in 0..=max_bin {
            // Replica-index order again: each replica contributes at
            // most one snapshot per bin.
            let mut lat = Vec::new();
            let mut miss = Vec::new();
            let mut util = Vec::new();
            for r in replicas {
                if let Some(b) = r.bins.iter().find(|b| b.0 == idx) {
                    lat.push(b.1);
                    miss.push(b.2);
                    util.push(b.3);
                }
            }
            let (Some(latency_p95_s), Some(miss_rate), Some(utilization)) = (
                Band::from_samples(&lat),
                Band::from_samples(&miss),
                Band::from_samples(&util),
            ) else {
                continue;
            };
            bands.push(TimeBand {
                t_s: (idx + 1) as f64 * bin_s,
                replicas: lat.len(),
                latency_p95_s,
                miss_rate,
                utilization,
            });
        }
    }
    CellReport {
        fleet_size,
        rate_scale,
        offered_rate_per_s,
        replicas: replicas.len(),
        scalars,
        bands,
    }
}

/// Scans each fleet size's cells in ascending rate-scale order and
/// keeps the largest scale whose mean miss rate stays within `budget`.
pub fn capacity_frontier(cells: &[CellReport], budget: f64) -> Vec<FrontierPoint> {
    let mut sizes: Vec<usize> = cells.iter().map(|c| c.fleet_size).collect();
    sizes.dedup();
    sizes
        .into_iter()
        .map(|fleet_size| {
            let mut row: Vec<&CellReport> = cells
                .iter()
                .filter(|c| c.fleet_size == fleet_size)
                .collect();
            row.sort_by(|a, b| {
                a.rate_scale
                    .partial_cmp(&b.rate_scale)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let best = row
                .iter()
                .take_while(|c| c.scalars.miss_rate_mean <= budget)
                .last();
            FrontierPoint {
                fleet_size,
                max_rate_scale: best.map(|c| c.rate_scale),
                max_rate_per_s: best.and_then(|c| c.offered_rate_per_s),
                miss_rate: best.map(|c| c.scalars.miss_rate_mean),
                miss_rate_ci95: best.and_then(|c| c.scalars.miss_rate_ci95),
                replan_gain: best.and_then(|c| c.scalars.replan_gain_mean),
                replan_gain_ci95: best.and_then(|c| c.scalars.replan_gain_ci95),
            }
        })
        .collect()
}

/// Pairs each budgeted cell's cost (mean per-window spend, adherence)
/// with its service quality (p95 latency, miss rate, queueing delay) —
/// the table the cap-vs-SLO trade-off is read from. Cells whose
/// replicas ran without a budget are skipped, so the frontier is empty
/// for budget-free sweeps.
pub fn cost_slo_frontier(cells: &[CellReport]) -> Vec<CostSloPoint> {
    cells
        .iter()
        .filter_map(|c| {
            Some(CostSloPoint {
                fleet_size: c.fleet_size,
                rate_scale: c.rate_scale,
                spend_per_window: c.scalars.budget_spend_mean_per_window?,
                adherence: c.scalars.budget_adherence_mean?,
                latency_p95_s: c.scalars.latency_p95_mean_s,
                miss_rate: c.scalars.miss_rate_mean,
                latency_price_s: c.scalars.budget_latency_price_mean_s?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_percentiles_use_ceil_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let b = Band::from_samples(&samples).unwrap();
        assert_eq!(b.p50, 50.0);
        assert_eq!(b.p95, 95.0);
        assert_eq!(b.p99, 99.0);
        let one = Band::from_samples(&[7.0]).unwrap();
        assert_eq!((one.p50, one.p95, one.p99), (7.0, 7.0, 7.0));
        assert!(Band::from_samples(&[]).is_none());
    }

    #[test]
    fn band_is_order_independent() {
        let a = Band::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        let b = Band::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    fn summary(miss: f64, bins: Vec<(usize, f64, f64, f64)>) -> ReplicaSummary {
        ReplicaSummary {
            miss_rate: miss,
            latency_p95_s: 1.0,
            throughput_per_s: 2.0,
            shed: 1,
            makespan_s: 100.0,
            replan_gain: None,
            budget_adherence: None,
            budget_spend_per_window: None,
            budget_latency_price_s: None,
            bins,
        }
    }

    #[test]
    fn aggregate_bins_align_across_replicas() {
        let cell = aggregate_cell(
            3,
            1.0,
            Some(0.3),
            &[
                summary(0.0, vec![(0, 1.0, 0.0, 0.5), (1, 2.0, 0.1, 0.6)]),
                summary(0.2, vec![(0, 3.0, 0.0, 0.7)]),
            ],
            600.0,
        );
        assert_eq!(cell.replicas, 2);
        assert_eq!(cell.bands.len(), 2);
        assert_eq!(cell.bands[0].t_s, 600.0);
        assert_eq!(cell.bands[0].replicas, 2);
        assert_eq!(cell.bands[1].replicas, 1);
        assert!((cell.scalars.miss_rate_mean - 0.1).abs() < 1e-12);
        assert_eq!(cell.scalars.miss_rate_max, 0.2);
    }

    fn cell(fleet: usize, scale: f64, miss: f64) -> CellReport {
        CellReport {
            fleet_size: fleet,
            rate_scale: scale,
            offered_rate_per_s: Some(0.3 * scale),
            replicas: 1,
            scalars: CellScalars {
                miss_rate_mean: miss,
                miss_rate_ci95: Some(Ci95 { lo: miss, hi: miss }),
                miss_rate_max: miss,
                replan_gain_mean: None,
                replan_gain_ci95: None,
                latency_p95_mean_s: 1.0,
                throughput_mean_per_s: 1.0,
                shed_mean: 0.0,
                makespan_mean_s: 10.0,
                budget_adherence_mean: None,
                budget_adherence_band: None,
                budget_spend_mean_per_window: None,
                budget_latency_price_mean_s: None,
            },
            bands: Vec::new(),
        }
    }

    #[test]
    fn frontier_finds_largest_sustainable_scale() {
        let cells = vec![
            cell(2, 0.5, 0.0),
            cell(2, 1.0, 0.005),
            cell(2, 2.0, 0.3),
            cell(4, 0.5, 0.0),
            cell(4, 1.0, 0.0),
            cell(4, 2.0, 0.002),
        ];
        let f = capacity_frontier(&cells, 0.01);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].fleet_size, 2);
        assert_eq!(f[0].max_rate_scale, Some(1.0));
        assert_eq!(f[1].max_rate_scale, Some(2.0));
        assert_eq!(f[1].max_rate_per_s, Some(0.6));
    }

    #[test]
    fn frontier_reports_unsustainable_rows_as_none() {
        let f = capacity_frontier(&[cell(2, 0.5, 0.9)], 0.01);
        assert_eq!(f[0].max_rate_scale, None);
        assert_eq!(f[0].miss_rate, None);
    }

    #[test]
    fn bootstrap_ci_is_deterministic_and_brackets_the_mean() {
        let samples: Vec<f64> = (0..40).map(|i| f64::from(i) / 40.0).collect();
        let a = bootstrap_ci95(&samples).unwrap();
        let b = bootstrap_ci95(&samples).unwrap();
        assert_eq!(a, b, "same samples in same order ⇒ same interval");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(a.lo <= mean && mean <= a.hi);
        assert!(a.lo < a.hi, "spread samples get a non-degenerate CI");
        // Degenerate cases.
        let one = bootstrap_ci95(&[0.25]).unwrap();
        assert_eq!((one.lo, one.hi), (0.25, 0.25));
        assert!(bootstrap_ci95(&[]).is_none());
    }

    fn window(at_s: f64, miss_rate: f64) -> WindowSnapshot {
        WindowSnapshot {
            at_s,
            window: 16,
            p50_s: 1.0,
            p95_s: 2.0,
            p99_s: 3.0,
            miss_rate,
            utilization: 0.5,
        }
    }

    fn replan(at_s: f64, accepted: bool) -> ReplanRecord {
        ReplanRecord {
            at_s,
            trigger: "test".into(),
            mandatory: false,
            break_even_requests: Some(10),
            observed_rate_per_s: 0.3,
            accepted,
            switching_cost_s: if accepted { 1.0 } else { 0.0 },
            migrations: usize::from(accepted),
        }
    }

    #[test]
    fn replan_gain_measures_before_after_miss_drop() {
        let windows = vec![
            window(80.0, 0.4),
            window(95.0, 0.2),
            window(110.0, 0.1),
            window(120.0, 0.0),
        ];
        // Accepted replan at t=100 with a 100 s horizon: before mean
        // (0.4 + 0.2)/2 = 0.3, after mean (0.1 + 0.0)/2 = 0.05.
        let g = replan_gain(&[replan(100.0, true)], &windows, 100.0).unwrap();
        assert!((g - 0.25).abs() < 1e-12, "{g}");
        // Rejected replans and replans without windows on both sides
        // contribute nothing.
        assert!(replan_gain(&[replan(100.0, false)], &windows, 100.0).is_none());
        assert!(replan_gain(&[replan(100.0, true)], &windows[..2], 100.0).is_none());
        assert!(replan_gain(&[], &windows, 100.0).is_none());
    }

    #[test]
    fn aggregate_cell_bootstraps_miss_and_gain() {
        let mut a = summary(0.1, vec![]);
        a.replan_gain = Some(0.05);
        let mut b = summary(0.3, vec![]);
        b.replan_gain = Some(0.15);
        let c = summary(0.2, vec![]); // no measurable replan
        let cell = aggregate_cell(4, 1.0, Some(0.3), &[a, b, c], 600.0);
        let ci = cell.scalars.miss_rate_ci95.unwrap();
        assert!(ci.lo >= 0.1 && ci.hi <= 0.3 && ci.lo <= ci.hi);
        let gain = cell.scalars.replan_gain_mean.unwrap();
        assert!((gain - 0.10).abs() < 1e-12);
        let gci = cell.scalars.replan_gain_ci95.unwrap();
        assert!(gci.lo >= 0.05 && gci.hi <= 0.15);
        // A cell with no measurable replans reports null gains.
        let none = aggregate_cell(4, 1.0, Some(0.3), &[summary(0.1, vec![])], 600.0);
        assert!(none.scalars.replan_gain_mean.is_none());
        assert!(none.scalars.replan_gain_ci95.is_none());
        assert!(none.scalars.miss_rate_ci95.is_some());
    }

    #[test]
    fn summary_renders_ci_columns() {
        let mut c = cell(2, 1.0, 0.005);
        c.scalars.replan_gain_mean = Some(0.02);
        c.scalars.replan_gain_ci95 = Some(Ci95 { lo: 0.01, hi: 0.03 });
        let report = SweepReport {
            seed: "s".into(),
            seeds_per_cell: 1,
            replicas: 1,
            miss_budget: 0.01,
            bin_s: 600.0,
            cells: vec![c.clone()],
            frontier: capacity_frontier(&[c], 0.01),
            cost_slo: None,
        };
        let text = report.render_summary();
        assert!(text.contains("miss 95% CI"), "{text}");
        assert!(
            !text.contains("cost x SLO"),
            "budget-free sweeps skip the section: {text}"
        );
        assert!(text.contains("[0.50, 0.50]%"), "{text}");
        assert!(text.contains("replan gain"), "{text}");
        assert!(text.contains("+2.00"), "{text}");
        assert!(text.contains("95% CI [0.50, 0.50]%"), "{text}");
    }

    #[test]
    fn report_json_roundtrip() {
        let report = SweepReport {
            seed: "s".into(),
            seeds_per_cell: 1,
            replicas: 1,
            miss_budget: 0.01,
            bin_s: 600.0,
            cells: vec![cell(2, 1.0, 0.0)],
            frontier: capacity_frontier(&[cell(2, 1.0, 0.0)], 0.01),
            cost_slo: None,
        };
        let back = SweepReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
        let text = report.render_summary();
        assert!(text.contains("capacity frontier"));
        assert!(text.contains("2 devices"));
    }

    fn budget_summary(adherence: f64, spend: f64, price: f64) -> ReplicaSummary {
        let mut s = summary(0.1, vec![]);
        s.budget_adherence = Some(adherence);
        s.budget_spend_per_window = Some(spend);
        s.budget_latency_price_s = Some(price);
        s
    }

    #[test]
    fn aggregate_cell_bands_budget_adherence() {
        let cell = aggregate_cell(
            4,
            1.0,
            Some(0.3),
            &[
                budget_summary(1.0, 3.0, 0.5),
                budget_summary(0.8, 5.0, 1.5),
                summary(0.1, vec![]), // budget-free replica contributes nothing
            ],
            600.0,
        );
        let s = &cell.scalars;
        assert!((s.budget_adherence_mean.unwrap() - 0.9).abs() < 1e-12);
        let band = s.budget_adherence_band.as_ref().unwrap();
        assert_eq!((band.p50, band.p99), (0.8, 1.0));
        assert!((s.budget_spend_mean_per_window.unwrap() - 4.0).abs() < 1e-12);
        assert!((s.budget_latency_price_mean_s.unwrap() - 1.0).abs() < 1e-12);
        // A budget-free cell reports nulls across the board.
        let none = aggregate_cell(4, 1.0, Some(0.3), &[summary(0.1, vec![])], 600.0);
        assert!(none.scalars.budget_adherence_mean.is_none());
        assert!(none.scalars.budget_adherence_band.is_none());
        assert!(none.scalars.budget_spend_mean_per_window.is_none());
        assert!(none.scalars.budget_latency_price_mean_s.is_none());
    }

    #[test]
    fn cost_slo_frontier_pairs_spend_with_service_quality() {
        let budgeted = aggregate_cell(2, 1.0, Some(0.3), &[budget_summary(0.95, 4.0, 2.0)], 600.0);
        let free = cell(4, 1.0, 0.0);
        let points = cost_slo_frontier(&[budgeted.clone(), free]);
        assert_eq!(points.len(), 1, "budget-free cells are skipped");
        let p = &points[0];
        assert_eq!((p.fleet_size, p.rate_scale), (2, 1.0));
        assert!((p.spend_per_window - 4.0).abs() < 1e-12);
        assert!((p.adherence - 0.95).abs() < 1e-12);
        assert!((p.latency_price_s - 2.0).abs() < 1e-12);
        let report = SweepReport {
            seed: "s".into(),
            seeds_per_cell: 1,
            replicas: 1,
            miss_budget: 0.01,
            bin_s: 600.0,
            cells: vec![budgeted.clone()],
            frontier: capacity_frontier(&[budgeted], 0.01),
            cost_slo: Some(points),
        };
        let text = report.render_summary();
        assert!(text.contains("cost x SLO frontier"), "{text}");
        assert!(text.contains("spend 4.00/window"), "{text}");
        assert!(text.contains("adherence 95.0%"), "{text}");
        let back = SweepReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn old_sweep_json_without_budget_fields_still_parses() {
        let report = SweepReport {
            seed: "s".into(),
            seeds_per_cell: 1,
            replicas: 1,
            miss_budget: 0.01,
            bin_s: 600.0,
            cells: vec![cell(2, 1.0, 0.0)],
            frontier: Vec::new(),
            cost_slo: None,
        };
        // Strip every budget line the way a pre-budget report would
        // have looked, then parse: the new fields must default.
        let json: String = report
            .to_json()
            .unwrap()
            .lines()
            .filter(|l| !l.contains("budget_") && !l.contains("cost_slo"))
            .collect::<Vec<_>>()
            .join("\n")
            .replace("\"makespan_mean_s\": 10.0,", "\"makespan_mean_s\": 10.0")
            .replace("\"frontier\": [],", "\"frontier\": []");
        let back = SweepReport::from_json(&json).unwrap();
        assert_eq!(report, back);
    }
}
