//! # s2m3-sweep
//!
//! Parallel Monte Carlo sweeps over the S2M3 serving stack: a
//! [`SweepSpec`] fans one base [`ServeScenario`](s2m3_serve::ServeScenario)
//! across a (seed × arrival-rate-scale × fleet-size) grid, executes
//! every seeded replica on a work-stealing thread pool
//! ([`rayon_lite`]), and folds the replica reports into one
//! deterministic [`SweepReport`]:
//!
//! - **per-timestep bands** — p50/p95/p99 across replicas of rolling
//!   latency, deadline-miss rate, and fleet utilization, binned in
//!   virtual time;
//! - **per-cell scalars** — whole-run miss rate, p95 latency,
//!   throughput, shed count, makespan, averaged over seeds;
//! - **capacity frontier** — the largest swept arrival-rate scale each
//!   fleet size sustains within a deadline-miss budget (the "max
//!   sustainable rate at <1% miss" curve).
//!
//! Replica seeds derive from the base seed by replica index, so every
//! grid cell sees the *same* random-number streams (common random
//! numbers): cell-to-cell differences are treatment effects, not
//! sampling noise.
//!
//! ## Determinism contract
//!
//! The same spec produces a byte-identical JSON report at **any**
//! thread count. Replica execution order varies with scheduling, but
//! `par_map` returns results in submission order and every aggregate
//! (floating-point sums included) folds in replica-index order. The
//! thread-invariance proptest pins this.
//!
//! ## Example
//!
//! ```
//! use s2m3_serve::ServeScenario;
//! use s2m3_sweep::{run_sweep, SweepSpec};
//!
//! let mut base = ServeScenario::churn_default();
//! base.requests = 30; // keep the doctest fast
//! let mut spec = SweepSpec::quick(base);
//! spec.seeds = 1;
//! spec.rate_scales = vec![1.0];
//! spec.fleet_sizes = vec![2];
//! spec.threads = 1;
//! let report = run_sweep(&spec).unwrap();
//! assert_eq!(report.cells.len(), 1);
//! assert_eq!(report.frontier.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod report;
pub mod run;
pub mod spec;

#[cfg(test)]
mod proptests;

pub use report::{
    bootstrap_ci95, cost_slo_frontier, replan_gain, Band, CellReport, CellScalars, Ci95,
    CostSloPoint, FrontierPoint, ReplicaSummary, SweepReport, TimeBand,
};
pub use run::{run_sweep, run_sweep_on};
pub use spec::{scale_arrivals, SweepSpec};

/// Sweep failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The spec's grid is malformed or underivable from its base
    /// scenario.
    BadSpec(String),
    /// A replica failed to prepare or execute.
    Serve(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::BadSpec(msg) => write!(f, "bad sweep spec: {msg}"),
            SweepError::Serve(msg) => write!(f, "replica failed: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

// Compile-time proof that replica execution is Send-clean end to end:
// the pool moves these across threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<s2m3_serve::ServeSession>();
    assert_send::<s2m3_serve::ServeReport>();
    assert_send_sync::<s2m3_serve::SharedStart>();
    assert_send_sync::<s2m3_core::resolved::ResolvedInstance>();
    assert_send::<SweepSpec>();
    assert_send::<SweepReport>();
};
