//! The sweep grid: a base serving scenario fanned out over
//! (seed × arrival-rate-scale × fleet-size) cells.

use serde::{Deserialize, Serialize};

use s2m3_net::fleet::Fleet;
use s2m3_serve::ServeScenario;
use s2m3_sim::workload::ArrivalProcess;

use crate::SweepError;

/// A Monte Carlo sweep over a base [`ServeScenario`].
///
/// Every (rate-scale, fleet-size) pair is one *cell*; each cell runs
/// `seeds` independent replicas whose seed labels derive from
/// `base.seed` by replica index — the *same* per-replica label in every
/// cell, so cells are compared under common random numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// The scenario each replica derives from (its `seed`,
    /// `initial_devices`, and arrival rates are overridden per cell).
    pub base: ServeScenario,
    /// Seeded replicas per cell (≥1).
    pub seeds: usize,
    /// Multipliers applied to every arrival rate of the base workload
    /// (1.0 = as configured). Each entry is one grid column.
    pub rate_scales: Vec<f64>,
    /// Active-fleet sizes at t = 0: each entry keeps the requester plus
    /// the first `size - 1` other devices of `base.initial_devices`.
    pub fleet_sizes: Vec<usize>,
    /// Width of the per-timestep aggregation bins, virtual seconds.
    pub bin_s: f64,
    /// Deadline-miss budget for the capacity frontier (e.g. `0.01` for
    /// "max sustainable rate at <1% miss").
    pub miss_budget: f64,
    /// Worker threads for replica execution (0 = all available cores).
    /// Execution detail only: the aggregate report is byte-identical at
    /// any thread count.
    pub threads: usize,
}

impl SweepSpec {
    /// A small default grid over `base`: 4 seeds, rates ×{0.5, 1, 2},
    /// every fleet size from 2 devices up to the full initial set.
    pub fn quick(base: ServeScenario) -> Self {
        let full = base.initial_devices.len().max(1);
        SweepSpec {
            base,
            seeds: 4,
            rate_scales: vec![0.5, 1.0, 2.0],
            fleet_sizes: (2..=full).collect(),
            bin_s: 600.0,
            miss_budget: 0.01,
            threads: 0,
        }
    }

    /// Grid cells (rate scales × fleet sizes).
    pub fn cell_count(&self) -> usize {
        self.rate_scales.len() * self.fleet_sizes.len()
    }

    /// Total replicas the sweep will execute.
    pub fn replica_count(&self) -> usize {
        self.cell_count() * self.seeds
    }

    /// Validates grid shape and cell derivability.
    ///
    /// # Errors
    ///
    /// [`SweepError::BadSpec`] on an empty grid axis, a non-positive
    /// rate scale, or a fleet size the base scenario cannot provide.
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.seeds == 0 {
            return Err(SweepError::BadSpec("seeds must be >= 1".into()));
        }
        if self.rate_scales.is_empty() {
            return Err(SweepError::BadSpec("rate_scales is empty".into()));
        }
        if self.fleet_sizes.is_empty() {
            return Err(SweepError::BadSpec("fleet_sizes is empty".into()));
        }
        if self.bin_s <= 0.0 || self.bin_s.is_nan() {
            return Err(SweepError::BadSpec("bin_s must be > 0".into()));
        }
        if !self.miss_budget.is_finite() || self.miss_budget < 0.0 {
            return Err(SweepError::BadSpec(
                "miss_budget must be finite and >= 0".into(),
            ));
        }
        for &f in &self.rate_scales {
            if f <= 0.0 || !f.is_finite() {
                return Err(SweepError::BadSpec(format!(
                    "rate scale {f} must be finite and > 0"
                )));
            }
        }
        let ordered = self.device_order()?;
        for &k in &self.fleet_sizes {
            if k == 0 || k > ordered.len() {
                return Err(SweepError::BadSpec(format!(
                    "fleet size {k} out of range 1..={} (base initial devices)",
                    ordered.len()
                )));
            }
        }
        Ok(())
    }

    /// The base scenario's initial devices with the requester moved to
    /// the front: the prefix order fleet sizes cut from.
    pub(crate) fn device_order(&self) -> Result<Vec<String>, SweepError> {
        let universe = match self.base.fleet.as_str() {
            "edge" => Fleet::edge_testbed(),
            "standard" => Fleet::standard_testbed(),
            other => {
                return Err(SweepError::BadSpec(format!(
                    "unknown fleet `{other}` (edge|standard)"
                )))
            }
        };
        let requester = universe.requester().as_str().to_string();
        if !self.base.initial_devices.contains(&requester) {
            return Err(SweepError::BadSpec(format!(
                "base initial devices must include the requester `{requester}`"
            )));
        }
        let mut order = vec![requester.clone()];
        order.extend(
            self.base
                .initial_devices
                .iter()
                .filter(|d| **d != requester)
                .cloned(),
        );
        Ok(order)
    }

    /// Derives one replica's scenario for cell (`rate_scale`,
    /// `fleet_size`) and replica `seed_idx`.
    ///
    /// - the seed label becomes `{base.seed}/r{seed_idx}` (identical
    ///   across cells: common random numbers);
    /// - every arrival process (scenario-level and per-source) is
    ///   scaled by `rate_scale`;
    /// - `initial_devices` is cut to the cell's fleet prefix, and fleet
    ///   events that no longer apply (a leave/slowdown of an excluded
    ///   device, a join of an included one) are dropped.
    ///
    /// # Errors
    ///
    /// [`SweepError::BadSpec`] when a traffic source's device falls
    /// outside the cell fleet (sources must be active at t = 0).
    pub fn cell_scenario(
        &self,
        rate_scale: f64,
        fleet_size: usize,
        seed_idx: usize,
    ) -> Result<ServeScenario, SweepError> {
        let order = self.device_order()?;
        let devices: Vec<String> = order.into_iter().take(fleet_size).collect();
        let mut s = self.base.clone();
        s.seed = format!("{}/r{}", self.base.seed, seed_idx);
        s.arrivals = scale_arrivals(&s.arrivals, rate_scale);
        for src in &mut s.sources {
            if !devices.contains(&src.device) {
                return Err(SweepError::BadSpec(format!(
                    "traffic source `{}` is outside the {}-device cell fleet",
                    src.device, fleet_size
                )));
            }
            src.arrivals = scale_arrivals(&src.arrivals, rate_scale);
        }
        s.events.retain(|e| {
            let (device, joins) = match &e.kind {
                s2m3_serve::FleetEventKind::DeviceJoin { device } => (device, true),
                s2m3_serve::FleetEventKind::DeviceLeave { device } => (device, false),
                s2m3_serve::FleetEventKind::DeviceSlowdown { device, .. } => (device, false),
            };
            devices.contains(device) != joins
        });
        s.initial_devices = devices;
        // Replicas run concurrently: a shared sink path would interleave
        // row groups from different replicas, so the per-replica
        // scenario keeps streaming mode but drops the file sink (sweeps
        // aggregate reports, not per-request rows).
        if let Some(streaming) = &mut s.streaming {
            streaming.sink = None;
        }
        Ok(s)
    }

    /// Mean offered arrival rate of a cell at `rate_scale`, requests
    /// per second: the sum of the scaled per-source mean rates (or the
    /// scenario-level process when no sources are configured). `None`
    /// when any process has no mean rate (simultaneous bursts).
    pub fn offered_rate_per_s(&self, rate_scale: f64) -> Option<f64> {
        if self.base.sources.is_empty() {
            return self.base.arrivals.mean_rate_per_s().map(|r| r * rate_scale);
        }
        let mut total = 0.0;
        for src in &self.base.sources {
            total += src.arrivals.mean_rate_per_s()?;
        }
        Some(total * rate_scale)
    }

    /// Parses a spec from JSON (all fields required).
    ///
    /// # Errors
    ///
    /// A human-readable parse/validation message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let spec: SweepSpec = serde_json::from_str(text).map_err(|e| e.to_string())?;
        spec.validate().map_err(|e| e.to_string())?;
        Ok(spec)
    }

    /// JSON export.
    ///
    /// # Errors
    ///
    /// Propagates serialization failure (not expected for this type).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }
}

/// Scales an arrival process's mean rate by `factor`, preserving its
/// shape: rates multiply, inter-arrival gaps divide, burst timing
/// (simultaneous) and modulation time-scales (MMPP dwell, diurnal
/// period) stay fixed.
pub fn scale_arrivals(process: &ArrivalProcess, factor: f64) -> ArrivalProcess {
    match process {
        ArrivalProcess::Simultaneous => ArrivalProcess::Simultaneous,
        ArrivalProcess::Uniform { interval_s } => ArrivalProcess::Uniform {
            interval_s: interval_s / factor,
        },
        ArrivalProcess::Poisson { rate_per_s } => ArrivalProcess::Poisson {
            rate_per_s: rate_per_s * factor,
        },
        ArrivalProcess::Mmpp {
            rates_per_s,
            mean_dwell_s,
        } => ArrivalProcess::Mmpp {
            rates_per_s: rates_per_s.iter().map(|r| r * factor).collect(),
            mean_dwell_s: *mean_dwell_s,
        },
        ArrivalProcess::Diurnal {
            base_rate_per_s,
            peak_rate_per_s,
            period_s,
        } => ArrivalProcess::Diurnal {
            base_rate_per_s: base_rate_per_s * factor,
            peak_rate_per_s: peak_rate_per_s * factor,
            period_s: *period_s,
        },
        ArrivalProcess::Trace { inter_arrival_s } => ArrivalProcess::Trace {
            inter_arrival_s: inter_arrival_s.iter().map(|g| g / factor).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::quick(ServeScenario::churn_default())
    }

    #[test]
    fn quick_spec_validates_and_counts() {
        let s = spec();
        s.validate().unwrap();
        assert_eq!(s.cell_count(), 3 * 3);
        assert_eq!(s.replica_count(), 3 * 3 * 4);
    }

    #[test]
    fn scaling_doubles_rates_and_halves_gaps() {
        let p = scale_arrivals(&ArrivalProcess::Poisson { rate_per_s: 0.3 }, 2.0);
        assert_eq!(p.mean_rate_per_s(), Some(0.6));
        let u = scale_arrivals(&ArrivalProcess::Uniform { interval_s: 4.0 }, 2.0);
        assert!(matches!(u, ArrivalProcess::Uniform { interval_s } if interval_s == 2.0));
        let t = scale_arrivals(
            &ArrivalProcess::Trace {
                inter_arrival_s: vec![1.0, 3.0],
            },
            2.0,
        );
        assert!(
            matches!(t, ArrivalProcess::Trace { inter_arrival_s } if inter_arrival_s == [0.5, 1.5])
        );
        let m = scale_arrivals(
            &ArrivalProcess::Mmpp {
                rates_per_s: vec![0.1, 1.0],
                mean_dwell_s: 60.0,
            },
            3.0,
        );
        match m {
            ArrivalProcess::Mmpp {
                rates_per_s,
                mean_dwell_s,
            } => {
                assert_eq!(rates_per_s, vec![0.30000000000000004, 3.0]);
                assert_eq!(mean_dwell_s, 60.0, "modulation time-scale is preserved");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cell_scenario_keeps_requester_and_filters_events() {
        // churn_default: initial [desktop, laptop, jetson-b, jetson-a],
        // requester jetson-a, desktop leaves @1800s, server joins @4200s.
        let s = spec();
        let two = s.cell_scenario(1.0, 2, 0).unwrap();
        assert_eq!(two.initial_devices, vec!["jetson-a", "desktop"]);
        assert_eq!(two.seed, format!("{}/r0", s.base.seed));
        // Desktop is in the cell: its leave stays. Server join stays.
        assert_eq!(two.events.len(), s.base.events.len());

        let solo = s.cell_scenario(1.0, 1, 2).unwrap();
        assert_eq!(solo.initial_devices, vec!["jetson-a"]);
        // Desktop excluded: its leave is dropped; the join survives.
        assert!(solo.events.iter().all(|e| !matches!(
            &e.kind,
            s2m3_serve::FleetEventKind::DeviceLeave { device } if device == "desktop"
        )));
    }

    #[test]
    fn seeds_are_shared_across_cells() {
        let s = spec();
        let a = s.cell_scenario(0.5, 2, 3).unwrap();
        let b = s.cell_scenario(2.0, 4, 3).unwrap();
        assert_eq!(a.seed, b.seed, "common random numbers across cells");
    }

    #[test]
    fn bad_specs_are_rejected() {
        let mut s = spec();
        s.seeds = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.rate_scales = vec![0.0];
        assert!(s.validate().is_err());
        let mut s = spec();
        s.fleet_sizes = vec![99];
        assert!(s.validate().is_err());
        let mut s = spec();
        s.base.initial_devices = vec!["desktop".to_string()];
        assert!(s.validate().is_err(), "requester must be derivable");
    }

    #[test]
    fn offered_rate_scales_with_the_grid() {
        let s = spec();
        let base = s.base.arrivals.mean_rate_per_s().unwrap();
        assert_eq!(s.offered_rate_per_s(2.0), Some(base * 2.0));
    }

    #[test]
    fn spec_json_roundtrip() {
        let s = spec();
        let back = SweepSpec::from_json(&s.to_json().unwrap()).unwrap();
        assert_eq!(s, back);
    }
}
