//! Centralized single-process reference execution.
//!
//! Runs a model exactly as a monolithic deployment would: every encoder
//! in sequence in one address space, then the head. Because modules are
//! pure, this is the ground truth the distributed runtime is compared
//! against (the Table VIII "no accuracy change" check).

use s2m3_models::exec::{ExecError, Executable};
use s2m3_models::zoo::ModelSpec;
use s2m3_tensor::Matrix;

use crate::input::RequestInput;

/// Runs `model` on `input` in-process and returns the head output.
///
/// # Errors
///
/// [`ExecError`] if the input lacks a required modality or a module
/// misbehaves.
pub fn run_model(model: &ModelSpec, input: &RequestInput) -> Result<Matrix, ExecError> {
    let mut encodings = Vec::new();
    for enc_spec in model.encoders() {
        let exec = Executable::for_spec(enc_spec)?;
        let payload = input
            .for_kind(enc_spec.kind)
            .ok_or(ExecError::MissingEncoding(enc_spec.kind))?;
        encodings.push((enc_spec.kind, exec.encode(payload)?));
    }
    let head = Executable::for_spec(model.head())?;
    head.run_head(&encodings, input.query.as_ref())
}

/// Convenience: predicted index (argmax of the head scores).
///
/// # Errors
///
/// See [`run_model`]; also fails on empty outputs.
pub fn predict(model: &ModelSpec, input: &RequestInput) -> Result<usize, ExecError> {
    let scores = run_model(model, input)?;
    Ok(s2m3_tensor::ops::argmax_rows(&scores)?[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_models::zoo::Zoo;

    #[test]
    fn reference_runs_every_zoo_model() {
        let zoo = Zoo::standard();
        for model in zoo.models() {
            let input = RequestInput::synthetic(model, "ref", 8);
            let out = run_model(model, &input).unwrap_or_else(|e| panic!("{}: {e}", model.name));
            assert!(out.rows() >= 1 && out.cols() >= 1, "{}", model.name);
        }
    }

    #[test]
    fn predict_is_stable() {
        let zoo = Zoo::standard();
        let m = zoo.model("CLIP ViT-B/16").unwrap();
        let input = RequestInput::synthetic(m, "stable", 8);
        assert_eq!(predict(m, &input).unwrap(), predict(m, &input).unwrap());
    }

    #[test]
    fn missing_modality_errors() {
        let zoo = Zoo::standard();
        let m = zoo.model("CLIP ViT-B/16").unwrap();
        let mut input = RequestInput::synthetic(m, "x", 8);
        input.modalities.clear();
        assert!(run_model(m, &input).is_err());
    }
}
