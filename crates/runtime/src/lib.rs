//! # s2m3-runtime
//!
//! An executable distributed runtime for S2M3 plans: every device of the
//! fleet becomes a worker thread hosting the synthetic modules its
//! placement assigns, connected by the in-process message bus of
//! [`s2m3_net::transport`]. Requests fan their modality inputs out to the
//! encoder devices *in parallel* (real threads, real channels, real —
//! small — tensor computation), embeddings converge on the head device,
//! and the head's output returns to the requester.
//!
//! This is the correctness substrate for the paper's Table VIII: the same
//! request executed through *any* placement produces **bit-identical**
//! outputs, because modules are pure functions of (weights, input). The
//! latency numbers come from `s2m3-sim` instead — wall-clock here would
//! measure this machine, not the paper's testbed.
//!
//! ## Example
//!
//! ```
//! use s2m3_core::prelude::*;
//! use s2m3_runtime::{reference, RequestInput, Runtime};
//!
//! let instance = Instance::single_model("CLIP ViT-B/16", 8).unwrap();
//! let request = instance.request(0, "CLIP ViT-B/16").unwrap();
//! let plan = Plan::greedy(&instance, vec![request.clone()]).unwrap();
//! let input = RequestInput::synthetic(
//!     &instance.deployment("CLIP ViT-B/16").unwrap().model, "demo", 8);
//!
//! let runtime = Runtime::start(&instance, &plan).unwrap();
//! let distributed = runtime.infer(&request, &plan.routed[0].1, &input).unwrap();
//! runtime.shutdown();
//!
//! // Centralized single-process execution of the same model and input:
//! let central = reference::run_model(
//!     &instance.deployment("CLIP ViT-B/16").unwrap().model, &input).unwrap();
//! assert_eq!(distributed, central); // bit-identical
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod input;
pub mod messages;
pub mod reference;
mod runtime;
mod worker;

pub use input::RequestInput;
pub use runtime::{Runtime, RuntimeError};
