//! Request inputs: one payload per encoder modality plus the optional
//! raw query consumed by generative heads.

use serde::{Deserialize, Serialize};

use s2m3_models::input::{Modality, ModalityInput};
use s2m3_models::module::ModuleKind;
use s2m3_models::zoo::{ModelSpec, Task};

/// Everything a single inference request carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestInput {
    /// One input per modality the model's encoders consume.
    pub modalities: Vec<ModalityInput>,
    /// Raw question/prompt for generative (LLM) heads.
    pub query: Option<ModalityInput>,
}

impl RequestInput {
    /// Builds a synthetic input matching `model`'s encoder set, seeded by
    /// `label`; `candidates` controls the number of text prompts for
    /// retrieval/alignment tasks.
    pub fn synthetic(model: &ModelSpec, label: &str, candidates: usize) -> Self {
        let mut modalities = Vec::new();
        for enc in model.encoders() {
            let m = match enc.kind.modality() {
                Some(m) => m,
                None => continue,
            };
            let input = match m {
                Modality::Image => ModalityInput::image(label),
                Modality::Audio => ModalityInput::audio(label),
                Modality::Text => match model.task {
                    Task::EncoderVqa => ModalityInput::text_prompts(label, 1),
                    _ => ModalityInput::text_prompts(label, candidates.max(1)),
                },
            };
            modalities.push(input);
        }
        let query = match model.task {
            Task::DecoderVqa => Some(ModalityInput::text_prompts(&format!("{label}/query"), 1)),
            _ => None,
        };
        RequestInput { modalities, query }
    }

    /// The input for a given encoder kind, if present.
    pub fn for_kind(&self, kind: ModuleKind) -> Option<&ModalityInput> {
        let m = kind.modality()?;
        self.modalities.iter().find(|i| i.modality == m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_models::zoo::Zoo;

    #[test]
    fn synthetic_inputs_cover_model_modalities() {
        let zoo = Zoo::standard();
        let clip = zoo.model("CLIP ViT-B/16").unwrap();
        let i = RequestInput::synthetic(clip, "t", 10);
        assert_eq!(i.modalities.len(), 2);
        assert!(i.query.is_none());
        assert_eq!(i.for_kind(ModuleKind::TextEncoder).unwrap().units, 10.0);
        assert!(i.for_kind(ModuleKind::AudioEncoder).is_none());

        let imagebind = zoo.model("ImageBind").unwrap();
        let i = RequestInput::synthetic(imagebind, "t", 16);
        assert_eq!(i.modalities.len(), 3);

        let llava = zoo.model("LLaVA-v1.5-7B").unwrap();
        let i = RequestInput::synthetic(llava, "t", 0);
        assert_eq!(i.modalities.len(), 1);
        assert!(i.query.is_some());
    }

    #[test]
    fn encoder_vqa_gets_single_question_prompt() {
        let zoo = Zoo::standard();
        let vqa = zoo.model("Encoder-only VQA (Small)").unwrap();
        let i = RequestInput::synthetic(vqa, "q", 101);
        assert_eq!(i.for_kind(ModuleKind::TextEncoder).unwrap().units, 1.0);
    }

    #[test]
    fn synthetic_is_deterministic() {
        let zoo = Zoo::standard();
        let clip = zoo.model("CLIP ViT-B/16").unwrap();
        assert_eq!(
            RequestInput::synthetic(clip, "x", 5),
            RequestInput::synthetic(clip, "x", 5)
        );
        assert_ne!(
            RequestInput::synthetic(clip, "x", 5),
            RequestInput::synthetic(clip, "y", 5)
        );
    }
}
