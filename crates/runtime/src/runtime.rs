//! The coordinator-side runtime handle.

use std::collections::BTreeMap;
use std::thread::JoinHandle;
use std::time::Duration;

use s2m3_core::error::CoreError;
use s2m3_core::plan::Plan;
use s2m3_core::problem::{Instance, Request, Route};
use s2m3_models::exec::Executable;
use s2m3_models::module::{ModuleId, ModuleKind};
use s2m3_models::zoo::ModelSpec;
use s2m3_net::device::DeviceId;
use s2m3_net::envelope::Envelope;
use s2m3_net::transport::{InMemoryNetwork, Mailbox, NetworkBus, TransportError};
use s2m3_tensor::Matrix;

use crate::input::RequestInput;
use crate::messages::{HeadContext, RuntimeMsg, COORDINATOR, TAG};
use crate::worker::Worker;

/// Default wait for a request's result.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// Runtime errors.
#[derive(Debug)]
pub enum RuntimeError {
    /// A core-layer lookup failed.
    Core(CoreError),
    /// Message transport failed.
    Transport(TransportError),
    /// Building an executable module failed.
    Exec(String),
    /// A worker reported a failure for this request.
    Worker {
        /// The failing request.
        request: u64,
        /// The worker's reason.
        reason: String,
    },
    /// No result arrived within the timeout.
    Timeout(u64),
    /// The request input lacks a payload for an encoder kind.
    MissingInput(ModuleKind),
    /// A module the route needs is not in the placement.
    NotPlaced(ModuleId),
    /// Serialization failed.
    Serde(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Core(e) => write!(f, "core: {e}"),
            RuntimeError::Transport(e) => write!(f, "transport: {e}"),
            RuntimeError::Exec(e) => write!(f, "exec: {e}"),
            RuntimeError::Worker { request, reason } => {
                write!(f, "worker failure for request {request}: {reason}")
            }
            RuntimeError::Timeout(id) => write!(f, "request {id} timed out"),
            RuntimeError::MissingInput(k) => write!(f, "no input payload for {k}"),
            RuntimeError::NotPlaced(m) => write!(f, "module {m} is not placed"),
            RuntimeError::Serde(e) => write!(f, "serialization: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> Self {
        RuntimeError::Core(e)
    }
}

impl From<TransportError> for RuntimeError {
    fn from(e: TransportError) -> Self {
        RuntimeError::Transport(e)
    }
}

/// A running fleet of device workers executing one plan's placement,
/// generic over the message transport (in-process channels by default;
/// [`s2m3_net::tcp::TcpNetwork`] for the paper's real-socket path).
pub struct Runtime<B: NetworkBus = InMemoryNetwork> {
    net: B,
    coordinator: Mailbox,
    devices: Vec<DeviceId>,
    handles: Vec<JoinHandle<()>>,
    models: BTreeMap<String, ModelSpec>,
    timeout: Duration,
}

impl Runtime<InMemoryNetwork> {
    /// Boots one worker thread per fleet device over the default
    /// in-process transport.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Exec`] if an executable module cannot be built.
    pub fn start(instance: &Instance, plan: &Plan) -> Result<Self, RuntimeError> {
        let net = InMemoryNetwork::new(instance.fleet().topology().clone(), 0.0);
        Self::start_with(instance, plan, net)
    }
}

impl<B: NetworkBus> Runtime<B> {
    /// Boots one worker thread per fleet device over a caller-supplied
    /// transport (e.g. [`s2m3_net::tcp::TcpNetwork`]).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Exec`] if an executable module cannot be built.
    pub fn start_with(instance: &Instance, plan: &Plan, net: B) -> Result<Self, RuntimeError> {
        let coordinator = net.register(COORDINATOR.into());

        let specs: BTreeMap<ModuleId, _> = instance
            .distinct_modules()
            .into_iter()
            .map(|m| (m.id.clone(), m.clone()))
            .collect();

        let mut handles = Vec::new();
        let mut devices = Vec::new();
        for dev in instance.fleet().devices() {
            let mut modules = BTreeMap::new();
            for (m, n) in plan.placement.iter() {
                if n != &dev.id {
                    continue;
                }
                let Some(spec) = specs.get(m) else { continue };
                let exec =
                    Executable::for_spec(spec).map_err(|e| RuntimeError::Exec(e.to_string()))?;
                modules.insert(m.clone(), exec);
            }
            let mailbox = net.register(dev.id.clone());
            handles.push(Worker::spawn(dev.id.clone(), modules, net.clone(), mailbox));
            devices.push(dev.id.clone());
        }

        let models = instance
            .deployments()
            .iter()
            .map(|d| (d.model.name.clone(), d.model.clone()))
            .collect();

        Ok(Runtime {
            net,
            coordinator,
            devices,
            handles,
            models,
            timeout: DEFAULT_TIMEOUT,
        })
    }

    /// Changes the result-wait timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Submits a request without waiting: modality inputs are dispatched
    /// to the routed encoder devices in parallel.
    ///
    /// Request ids must be unique per submission: the head device
    /// aggregates encoder outputs keyed by id, and a failed request may
    /// leave a partial aggregation behind that a reused id would join.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] variants on unknown models, unplaced modules, or
    /// missing payloads.
    pub fn submit(
        &self,
        request: &Request,
        route: &Route,
        input: &RequestInput,
    ) -> Result<(), RuntimeError> {
        let model = self
            .models
            .get(&request.model)
            .ok_or_else(|| RuntimeError::Core(CoreError::UnknownModel(request.model.clone())))?;
        let head = model.head();
        let head_device = route
            .device_for(&head.id)
            .ok_or_else(|| RuntimeError::NotPlaced(head.id.clone()))?
            .clone();
        let ctx = HeadContext {
            head_module: head.id.clone(),
            head_device,
            expected_encoders: model.encoders().len(),
            query: input.query.clone(),
        };
        for enc in model.encoders() {
            let dev = route
                .device_for(&enc.id)
                .ok_or_else(|| RuntimeError::NotPlaced(enc.id.clone()))?;
            let payload = input
                .for_kind(enc.kind)
                .ok_or(RuntimeError::MissingInput(enc.kind))?;
            let msg = RuntimeMsg::Encode {
                request: request.id,
                module: enc.id.clone(),
                input: payload.clone(),
                head: ctx.clone(),
            };
            let env = Envelope::encode(request.source.clone(), dev.clone(), TAG, &msg)
                .map_err(|e| RuntimeError::Serde(e.to_string()))?;
            self.net.send(env)?;
        }
        Ok(())
    }

    /// Waits for `n` results, keyed by request id.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Timeout`] if a result does not arrive in time;
    /// [`RuntimeError::Worker`] if a worker reported failure.
    pub fn collect(&self, n: usize) -> Result<BTreeMap<u64, Matrix>, RuntimeError> {
        let mut out = BTreeMap::new();
        while out.len() < n {
            let env = self
                .coordinator
                .recv_timeout(self.timeout)
                .map_err(|_| RuntimeError::Timeout(u64::MAX))?;
            match env.decode::<RuntimeMsg>() {
                Ok(RuntimeMsg::Result { request, output }) => {
                    out.insert(request, output);
                }
                Ok(RuntimeMsg::Failure { request, reason }) => {
                    return Err(RuntimeError::Worker { request, reason });
                }
                _ => {}
            }
        }
        Ok(out)
    }

    /// Submit-and-wait for a single request.
    ///
    /// # Errors
    ///
    /// See [`Runtime::submit`] and [`Runtime::collect`].
    pub fn infer(
        &self,
        request: &Request,
        route: &Route,
        input: &RequestInput,
    ) -> Result<Matrix, RuntimeError> {
        self.submit(request, route, input)?;
        let mut results = self.collect(1)?;
        results
            .remove(&request.id)
            .ok_or(RuntimeError::Timeout(request.id))
    }

    /// Executes every routed request of a plan (submitted concurrently,
    /// like the paper's simultaneous multi-task burst) and returns the
    /// outputs keyed by request id.
    ///
    /// # Errors
    ///
    /// See [`Runtime::submit`] and [`Runtime::collect`].
    pub fn execute_plan(
        &self,
        plan: &Plan,
        inputs: &BTreeMap<u64, RequestInput>,
    ) -> Result<BTreeMap<u64, Matrix>, RuntimeError> {
        for (request, route) in &plan.routed {
            let input = inputs
                .get(&request.id)
                .ok_or(RuntimeError::Timeout(request.id))?;
            self.submit(request, route, input)?;
        }
        self.collect(plan.routed.len())
    }

    /// Gracefully stops all workers.
    pub fn shutdown(self) {
        for dev in &self.devices {
            if let Ok(env) =
                Envelope::encode(COORDINATOR.into(), dev.clone(), TAG, &RuntimeMsg::Shutdown)
            {
                let _ = self.net.send(env);
            }
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn setup(name: &str, candidates: usize) -> (Instance, Plan, Request) {
        let i = Instance::single_model(name, candidates).unwrap();
        let q = i.request(0, name).unwrap();
        let plan = Plan::greedy(&i, vec![q.clone()]).unwrap();
        (i, plan, q)
    }

    #[test]
    fn distributed_equals_centralized_bitwise() {
        // Table VIII's property, for one model per task family.
        for (name, c) in [
            ("CLIP ViT-B/16", 8),
            ("Encoder-only VQA (Small)", 1),
            ("Flint-v0.5-1B", 1),
            ("AlignBind-B", 6),
            ("CLIP-Classifier Food-101", 0),
            ("NLP Connect ViT-GPT2", 0),
        ] {
            let (i, plan, q) = setup(name, c);
            let model = &i.deployment(name).unwrap().model;
            let input = RequestInput::synthetic(model, "sample-7", c.max(1));
            let rt = Runtime::start(&i, &plan).unwrap();
            let distributed = rt.infer(&q, &plan.routed[0].1, &input).unwrap();
            rt.shutdown();
            let central = reference::run_model(model, &input).unwrap();
            assert_eq!(distributed, central, "{name}: split changed the output");
        }
    }

    #[test]
    fn concurrent_requests_all_complete() {
        let i = Instance::single_model("CLIP ViT-B/16", 8).unwrap();
        let requests: Vec<_> = (0..6)
            .map(|k| i.request(k, "CLIP ViT-B/16").unwrap())
            .collect();
        let plan = Plan::greedy(&i, requests).unwrap();
        let model = &i.deployment("CLIP ViT-B/16").unwrap().model;
        let inputs: BTreeMap<u64, RequestInput> = (0..6)
            .map(|k| (k, RequestInput::synthetic(model, &format!("img-{k}"), 8)))
            .collect();
        let rt = Runtime::start(&i, &plan).unwrap();
        let results = rt.execute_plan(&plan, &inputs).unwrap();
        rt.shutdown();
        assert_eq!(results.len(), 6);
        // Different inputs produce different outputs; same inputs would
        // be identical.
        assert_ne!(results[&0], results[&1]);
    }

    #[test]
    fn missing_payload_is_reported() {
        let (i, plan, q) = setup("CLIP ViT-B/16", 8);
        let rt = Runtime::start(&i, &plan).unwrap();
        let mut input =
            RequestInput::synthetic(&i.deployment("CLIP ViT-B/16").unwrap().model, "x", 8);
        input
            .modalities
            .retain(|m| m.modality != s2m3_models::input::Modality::Text);
        let err = rt.infer(&q, &plan.routed[0].1, &input).unwrap_err();
        rt.shutdown();
        assert!(matches!(
            err,
            RuntimeError::MissingInput(ModuleKind::TextEncoder)
        ));
    }

    #[test]
    fn unplaced_route_is_reported() {
        let (i, plan, q) = setup("CLIP ViT-B/16", 8);
        let rt = Runtime::start(&i, &plan).unwrap();
        let input = RequestInput::synthetic(&i.deployment("CLIP ViT-B/16").unwrap().model, "x", 8);
        let bad_route = Route::new(q.id); // empty
        let err = rt.infer(&q, &bad_route, &input).unwrap_err();
        rt.shutdown();
        assert!(matches!(err, RuntimeError::NotPlaced(_)));
    }

    #[test]
    fn worker_failure_surfaces_wrong_host() {
        // Route the vision encoder to a device that does not host it: the
        // worker reports a failure instead of hanging.
        let (i, plan, q) = setup("CLIP ViT-B/16", 8);
        let mut rt = Runtime::start(&i, &plan).unwrap();
        rt.set_timeout(Duration::from_secs(5));
        let input = RequestInput::synthetic(&i.deployment("CLIP ViT-B/16").unwrap().model, "x", 8);
        let mut bad_route = plan.routed[0].1.clone();
        let vision: ModuleId = "vision/ViT-B-16".into();
        let wrong: DeviceId = if plan.placement.is_placed(&vision, &"jetson-a".into()) {
            "jetson-b".into()
        } else {
            "jetson-a".into()
        };
        bad_route.assign(vision, wrong);
        let err = rt.infer(&q, &bad_route, &input).unwrap_err();
        rt.shutdown();
        match err {
            RuntimeError::Worker { reason, .. } => assert!(reason.contains("not hosted")),
            other => panic!("expected worker failure, got {other}"),
        }
    }

    #[test]
    fn placement_choice_does_not_change_output() {
        // Run the same request under two different placements; outputs
        // must be bit-identical (module purity).
        let i = Instance::single_model("CLIP ViT-B/16", 8).unwrap();
        let q = i.request(0, "CLIP ViT-B/16").unwrap();
        let model = &i.deployment("CLIP ViT-B/16").unwrap().model;
        let input = RequestInput::synthetic(model, "invariance", 8);

        let plan_a = Plan::greedy(&i, vec![q.clone()]).unwrap();
        // Alternative placement: everything on the desktop.
        let mut all_desktop = s2m3_core::problem::Placement::new();
        for m in i.distinct_modules() {
            all_desktop.place(m.id.clone(), "desktop".into());
        }
        let plan_b = Plan::route_all(&i, all_desktop, vec![q.clone()]).unwrap();

        let rt_a = Runtime::start(&i, &plan_a).unwrap();
        let out_a = rt_a.infer(&q, &plan_a.routed[0].1, &input).unwrap();
        rt_a.shutdown();
        let rt_b = Runtime::start(&i, &plan_b).unwrap();
        let out_b = rt_b.infer(&q, &plan_b.routed[0].1, &input).unwrap();
        rt_b.shutdown();
        assert_eq!(out_a, out_b);
    }
}

#[cfg(test)]
mod tcp_tests {
    use super::*;
    use crate::reference;
    use s2m3_net::tcp::TcpNetwork;

    #[test]
    fn distributed_inference_over_real_tcp_sockets() {
        // The paper's actual transport: length-prefixed frames over TCP.
        // Same request, same placement — same bits as the in-memory bus
        // and the centralized reference.
        let i = Instance::single_model("CLIP ViT-B/16", 8).unwrap();
        let q = i.request(0, "CLIP ViT-B/16").unwrap();
        let plan = Plan::greedy(&i, vec![q.clone()]).unwrap();
        let model = i.deployment("CLIP ViT-B/16").unwrap().model.clone();
        let input = RequestInput::synthetic(&model, "tcp", 8);

        let bus = TcpNetwork::new();
        let rt = Runtime::start_with(&i, &plan, bus.clone()).unwrap();
        let out = rt.infer(&q, &plan.routed[0].1, &input).unwrap();
        rt.shutdown();
        bus.shutdown();

        let central = reference::run_model(&model, &input).unwrap();
        assert_eq!(out, central);
    }
}
