//! Device worker: hosts placed modules, encodes, aggregates, runs heads.

use std::collections::{BTreeMap, HashMap};
use std::thread::JoinHandle;

use s2m3_models::exec::Executable;
use s2m3_models::module::{ModuleId, ModuleKind};
use s2m3_net::device::DeviceId;
use s2m3_net::envelope::Envelope;
use s2m3_net::transport::{Mailbox, NetworkBus};
use s2m3_tensor::Matrix;

use crate::messages::{HeadContext, RuntimeMsg, COORDINATOR, TAG};

struct Aggregation {
    collected: Vec<(ModuleKind, Matrix)>,
    head: HeadContext,
}

pub(crate) struct Worker<B: NetworkBus> {
    device: DeviceId,
    modules: BTreeMap<ModuleId, Executable>,
    net: B,
    mailbox: Mailbox,
    pending: HashMap<u64, Aggregation>,
}

impl<B: NetworkBus> Worker<B> {
    pub(crate) fn spawn(
        device: DeviceId,
        modules: BTreeMap<ModuleId, Executable>,
        net: B,
        mailbox: Mailbox,
    ) -> JoinHandle<()> {
        std::thread::spawn(move || {
            let mut w = Worker {
                device,
                modules,
                net,
                mailbox,
                pending: HashMap::new(),
            };
            w.run();
        })
    }

    fn run(&mut self) {
        while let Ok(env) = self.mailbox.recv() {
            let msg: RuntimeMsg = match env.decode() {
                Ok(m) => m,
                Err(_) => continue, // not a runtime message; ignore
            };
            match msg {
                RuntimeMsg::Shutdown => break,
                RuntimeMsg::Encode {
                    request,
                    module,
                    input,
                    head,
                } => self.handle_encode(request, &module, &input, head),
                RuntimeMsg::Embedding {
                    request,
                    from_module: _,
                    kind,
                    data,
                    head,
                } => self.handle_embedding(request, kind, data, head),
                // Results/failures are coordinator-bound; a worker
                // receiving one is a routing bug we surface by ignoring.
                RuntimeMsg::Result { .. } | RuntimeMsg::Failure { .. } => {}
            }
        }
    }

    fn fail(&self, request: u64, reason: String) {
        let msg = RuntimeMsg::Failure { request, reason };
        if let Ok(env) = Envelope::encode(self.device.clone(), COORDINATOR.into(), TAG, &msg) {
            let _ = self.net.send(env);
        }
    }

    fn handle_encode(
        &mut self,
        request: u64,
        module: &ModuleId,
        input: &s2m3_models::input::ModalityInput,
        head: HeadContext,
    ) {
        let Some(exec) = self.modules.get(module) else {
            self.fail(
                request,
                format!("{}: module {module} not hosted", self.device),
            );
            return;
        };
        let kind = exec.spec().kind;
        match exec.encode(input) {
            Ok(embedding) => {
                let msg = RuntimeMsg::Embedding {
                    request,
                    from_module: module.clone(),
                    kind,
                    data: embedding,
                    head: head.clone(),
                };
                match Envelope::encode(self.device.clone(), head.head_device, TAG, &msg) {
                    Ok(env) => {
                        if let Err(e) = self.net.send(env) {
                            self.fail(request, format!("embedding send failed: {e}"));
                        }
                    }
                    Err(e) => self.fail(request, format!("embedding encode failed: {e}")),
                }
            }
            Err(e) => self.fail(request, format!("{module} encode error: {e}")),
        }
    }

    fn handle_embedding(
        &mut self,
        request: u64,
        kind: ModuleKind,
        data: Matrix,
        head: HeadContext,
    ) {
        let expected = head.expected_encoders;
        let agg = self.pending.entry(request).or_insert_with(|| Aggregation {
            collected: Vec::with_capacity(expected),
            head,
        });
        agg.collected.push((kind, data));
        if agg.collected.len() < expected {
            return;
        }
        let agg = self.pending.remove(&request).expect("just inserted");
        let Some(exec) = self.modules.get(&agg.head.head_module) else {
            self.fail(
                request,
                format!("{}: head {} not hosted", self.device, agg.head.head_module),
            );
            return;
        };
        match exec.run_head(&agg.collected, agg.head.query.as_ref()) {
            Ok(output) => {
                let msg = RuntimeMsg::Result { request, output };
                match Envelope::encode(self.device.clone(), COORDINATOR.into(), TAG, &msg) {
                    Ok(env) => {
                        if let Err(e) = self.net.send(env) {
                            // Coordinator gone; nothing more to do.
                            let _ = e;
                        }
                    }
                    Err(e) => self.fail(request, format!("result encode failed: {e}")),
                }
            }
            Err(e) => self.fail(request, format!("head error: {e}")),
        }
    }
}
