//! Wire messages exchanged by device workers.

use serde::{Deserialize, Serialize};

use s2m3_models::input::ModalityInput;
use s2m3_models::module::{ModuleId, ModuleKind};
use s2m3_net::device::DeviceId;
use s2m3_tensor::Matrix;

/// The node name the coordinating client registers under.
pub const COORDINATOR: &str = "__coordinator";

/// Envelope tag used by all runtime messages.
pub const TAG: &str = "s2m3-runtime";

/// Routing context a message carries so the head device can aggregate
/// without global state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadContext {
    /// The head module to execute.
    pub head_module: ModuleId,
    /// The device hosting it for this request.
    pub head_device: DeviceId,
    /// How many encoder outputs the head must collect.
    pub expected_encoders: usize,
    /// Raw query for generative heads.
    pub query: Option<ModalityInput>,
}

/// Messages between the coordinator and device workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuntimeMsg {
    /// Run `module` on `input` and forward the embedding to the head.
    Encode {
        /// Request id.
        request: u64,
        /// Encoder module to run.
        module: ModuleId,
        /// The modality payload.
        input: ModalityInput,
        /// Head routing context.
        head: HeadContext,
    },
    /// An encoder output arriving at the head device.
    Embedding {
        /// Request id.
        request: u64,
        /// Producing module.
        from_module: ModuleId,
        /// Producing module's kind (the head dispatches on it).
        kind: ModuleKind,
        /// The embedding rows.
        data: Matrix,
        /// Head routing context (repeated so any arrival initializes the
        /// aggregation).
        head: HeadContext,
    },
    /// Final head output returning to the coordinator.
    Result {
        /// Request id.
        request: u64,
        /// Head scores/logits.
        output: Matrix,
    },
    /// A worker-side failure surfaced to the coordinator.
    Failure {
        /// Request id.
        request: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Stop the worker loop.
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2m3_net::envelope::Envelope;

    #[test]
    fn messages_roundtrip_through_envelopes() {
        let msg = RuntimeMsg::Encode {
            request: 9,
            module: "vision/ViT-B-16".into(),
            input: ModalityInput::image("x"),
            head: HeadContext {
                head_module: "head/cosine".into(),
                head_device: "desktop".into(),
                expected_encoders: 2,
                query: None,
            },
        };
        let env = Envelope::encode("jetson-a".into(), "desktop".into(), TAG, &msg).unwrap();
        let back: RuntimeMsg = env.decode().unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn result_and_failure_roundtrip() {
        let r = RuntimeMsg::Result {
            request: 1,
            output: Matrix::zeros(1, 4),
        };
        let env = Envelope::encode("desktop".into(), COORDINATOR.into(), TAG, &r).unwrap();
        assert_eq!(env.decode::<RuntimeMsg>().unwrap(), r);
        let f = RuntimeMsg::Failure {
            request: 2,
            reason: "missing module".into(),
        };
        let env = Envelope::encode("desktop".into(), COORDINATOR.into(), TAG, &f).unwrap();
        assert_eq!(env.decode::<RuntimeMsg>().unwrap(), f);
    }
}
