//! Workspace-local stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored value-tree serde without `syn`/`quote`: the input token
//! stream is walked by hand and the generated impl is assembled as
//! source text. Supported shapes (everything this workspace derives):
//!
//! - structs with named fields (incl. `#[serde(with = "module")]`);
//! - one-field tuple ("newtype") structs, serialized transparently;
//! - enums with unit, tuple, and struct variants, externally tagged like
//!   the real serde (`"Variant"`, `{"Variant": value}`,
//!   `{"Variant": {..}}`).
//!
//! Generic types are intentionally rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    with: Option<String>,
}

#[derive(Debug, Clone)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Input {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    NewtypeStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .expect("generated Serialize parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .expect("generated Deserialize parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens parse")
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            let k = id.to_string();
            i += 1;
            k
        }
        other => return Err(format!("derive expects a struct or enum, found {other:?}")),
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected type name, found {other:?}")),
    };

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde derive does not support generic type `{name}`"
        ));
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Ok(Input::NamedStruct {
                    name,
                    fields: parse_named_fields(&body)?,
                })
            } else {
                Ok(Input::Enum {
                    name,
                    variants: parse_variants(&body)?,
                })
            }
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let parts = split_top_level_commas(&inner);
            if parts.len() != 1 {
                return Err(format!(
                    "vendored serde derive supports tuple structs with exactly one field; `{name}` has {}",
                    parts.len()
                ));
            }
            Ok(Input::NewtypeStruct { name })
        }
        other => Err(format!("unsupported {kind} body for `{name}`: {other:?}")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]`
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token slice on commas, treating `<`/`>` pairs as nesting (so
/// `BTreeMap<K, V>` stays one piece). Groups are atomic already.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    let mut prev_minus = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => {
                    if prev_minus {
                        // `->` arrow: the '>' is not a closing bracket.
                    } else {
                        angle_depth -= 1;
                    }
                }
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    prev_minus = false;
                    continue;
                }
                _ => {}
            }
            prev_minus = p.as_char() == '-';
        } else {
            prev_minus = false;
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Reads a leading run of attributes from `tokens`, returning the index
/// after them and the `with = "..."` path if a serde attribute names one.
fn take_attrs(tokens: &[TokenTree], start: usize) -> (usize, Option<String>) {
    let mut i = start;
    let mut with = None;
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    with = with.or_else(|| parse_with_path(args.stream()));
                }
            }
        }
        i += 2;
    }
    (i, with)
}

fn parse_with_path(args: TokenStream) -> Option<String> {
    let toks: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        if let TokenTree::Ident(id) = &toks[i] {
            if id.to_string() == "with" {
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (toks.get(i + 1), toks.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let text = lit.to_string();
                        return Some(text.trim_matches('"').to_string());
                    }
                }
            }
        }
        i += 1;
    }
    None
}

fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for part in split_top_level_commas(tokens) {
        if part.is_empty() {
            continue;
        }
        let (mut i, with) = take_attrs(&part, 0);
        if matches!(part.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(part.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        fields.push(Field { name, with });
    }
    Ok(fields)
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for part in split_top_level_commas(tokens) {
        if part.is_empty() {
            continue;
        }
        let (mut i, _) = take_attrs(&part, 0);
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match part.get(i) {
            None => VariantShape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantShape::Tuple(split_top_level_commas(&inner).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantShape::Named(parse_named_fields(&inner)?)
            }
            other => return Err(format!("unsupported variant body for `{name}`: {other:?}")),
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

fn field_ser_expr(owner: &str, f: &Field) -> String {
    match &f.with {
        Some(path) => format!(
            "{path}::serialize(&{owner}{name}, ::serde::ValueSerializer).map_err(__S::Error::from)?",
            name = f.name
        ),
        None => format!(
            "::serde::to_value(&{owner}{name}).map_err(__S::Error::from)?",
            name = f.name
        ),
    }
}

fn field_de_expr(source: &str, f: &Field) -> String {
    let fetch = format!(
        "::serde::value::get_field_or_null({source}, \"{name}\")",
        name = f.name
    );
    match &f.with {
        Some(path) => format!(
            "{path}::deserialize(::serde::ValueDeserializer({fetch}))\
             .map_err(|e| __D::Error::from(::serde::Error::msg(format!(\"field `{name}`: {{e}}\", e = e))))?",
            name = f.name
        ),
        None => format!(
            "::serde::from_value({fetch})\
             .map_err(|e| __D::Error::from(::serde::Error::msg(format!(\"field `{name}`: {{e}}\", e = e))))?",
            name = f.name
        ),
    }
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__obj.push((\"{n}\".to_string(), {expr}));\n",
                        n = f.name,
                        expr = field_ser_expr("self.", f)
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize<__S: ::serde::Serializer>(&self, __s: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{
                        let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();
                        {pushes}
                        __s.serialize_value(::serde::value::Value::Object(__obj))
                    }}
                }}"
            )
        }
        Input::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{
                fn serialize<__S: ::serde::Serializer>(&self, __s: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{
                    let __v = ::serde::to_value(&self.0).map_err(__S::Error::from)?;
                    __s.serialize_value(__v)
                }}
            }}"
        ),
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => __s.serialize_value(::serde::value::Value::Str(\"{vname}\".to_string())),\n"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => {{
                                let __val = ::serde::to_value(__f0).map_err(__S::Error::from)?;
                                __s.serialize_value(::serde::value::Value::Object(vec![(\"{vname}\".to_string(), __val)]))
                            }},\n"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::to_value({b}).map_err(__S::Error::from)?,"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => {{
                                    let __items = vec![{items}];
                                    __s.serialize_value(::serde::value::Value::Object(vec![(\"{vname}\".to_string(), ::serde::value::Value::Array(__items))]))
                                }},\n",
                                binds = binds.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__inner.push((\"{n}\".to_string(), {expr}));\n",
                                        n = f.name,
                                        expr = field_ser_expr("*", f)
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {{
                                    let mut __inner: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();
                                    {pushes}
                                    __s.serialize_value(::serde::value::Value::Object(vec![(\"{vname}\".to_string(), ::serde::value::Value::Object(__inner))]))
                                }},\n",
                                binds = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize<__S: ::serde::Serializer>(&self, __s: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{
                        match self {{
                            {arms}
                        }}
                    }}
                }}"
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{n}: {expr},\n", n = f.name, expr = field_de_expr("__obj", f)))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{
                    fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) -> ::core::result::Result<Self, __D::Error> {{
                        let __v = __d.into_value()?;
                        let __obj = match &__v {{
                            ::serde::value::Value::Object(e) => e.as_slice(),
                            __other => return ::core::result::Result::Err(__D::Error::from(::serde::Error::msg(
                                format!(\"expected object for struct {name}, got {{__other:?}}\")))),
                        }};
                        ::core::result::Result::Ok({name} {{
                            {inits}
                        }})
                    }}
                }}"
            )
        }
        Input::NewtypeStruct { name } => format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{
                fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) -> ::core::result::Result<Self, __D::Error> {{
                    ::core::result::Result::Ok({name}(::serde::from_value(__d.into_value()?).map_err(__D::Error::from)?))
                }}
            }}"
        ),
        Input::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n", vname = v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => unreachable!(),
                        VariantShape::Tuple(1) => format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(
                                ::serde::from_value(__payload.clone()).map_err(__D::Error::from)?)),\n"
                        ),
                        VariantShape::Tuple(n) => {
                            let gets: String = (0..*n)
                                .map(|k| format!(
                                    "::serde::from_value(__items[{k}].clone()).map_err(__D::Error::from)?,"
                                ))
                                .collect();
                            format!(
                                "\"{vname}\" => match __payload {{
                                    ::serde::value::Value::Array(__items) if __items.len() == {n} =>
                                        ::core::result::Result::Ok({name}::{vname}({gets})),
                                    __other => ::core::result::Result::Err(__D::Error::from(::serde::Error::msg(
                                        format!(\"variant {vname} expects {n} values, got {{__other:?}}\")))),
                                }},\n"
                            )
                        }
                        VariantShape::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{n}: {expr},\n", n = f.name, expr = field_de_expr("__inner", f)))
                                .collect();
                            format!(
                                "\"{vname}\" => match __payload {{
                                    ::serde::value::Value::Object(__inner_entries) => {{
                                        let __inner = __inner_entries.as_slice();
                                        ::core::result::Result::Ok({name}::{vname} {{
                                            {inits}
                                        }})
                                    }}
                                    __other => ::core::result::Result::Err(__D::Error::from(::serde::Error::msg(
                                        format!(\"variant {vname} expects an object, got {{__other:?}}\")))),
                                }},\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{
                    fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) -> ::core::result::Result<Self, __D::Error> {{
                        let __v = __d.into_value()?;
                        match &__v {{
                            ::serde::value::Value::Str(__s) => match __s.as_str() {{
                                {unit_arms}
                                __other => ::core::result::Result::Err(__D::Error::from(::serde::Error::msg(
                                    format!(\"unknown {name} variant `{{__other}}`\")))),
                            }},
                            ::serde::value::Value::Object(__entries) if __entries.len() == 1 => {{
                                let (__tag, __payload) = (&__entries[0].0, &__entries[0].1);
                                match __tag.as_str() {{
                                    {payload_arms}
                                    __other => ::core::result::Result::Err(__D::Error::from(::serde::Error::msg(
                                        format!(\"unknown {name} variant `{{__other}}`\")))),
                                }}
                            }}
                            __other => ::core::result::Result::Err(__D::Error::from(::serde::Error::msg(
                                format!(\"expected {name} variant, got {{__other:?}}\")))),
                        }}
                    }}
                }}"
            )
        }
    }
}
