//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` locks with the real crate's non-poisoning API: lock
//! acquisition never returns a `Result`, and a panic while holding a lock
//! does not poison it for later users (we recover the inner value).

#![forbid(unsafe_code)]

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock whose accessors never fail.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock whose accessor never fails.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
