//! Workspace-local stand-in for the `peak_alloc` crate: a
//! [`GlobalAlloc`] wrapper over the [`System`] allocator that keeps
//! two atomic counters — bytes currently live and the high-water mark
//! of live bytes — so tests and benches can assert heap bounds
//! (e.g. "the streaming serve path is O(in-flight), not O(arrivals)").
//!
//! Install it as the global allocator and read the counters:
//!
//! ```ignore
//! use peak_alloc::PeakAlloc;
//!
//! #[global_allocator]
//! static ALLOC: PeakAlloc = PeakAlloc;
//!
//! ALLOC.reset_peak();
//! run_workload();
//! assert!(ALLOC.peak_bytes() < 64 << 20);
//! ```
//!
//! The counters use relaxed atomics: totals are exact under
//! single-threaded allocation, and the peak is a lower bound under
//! concurrency (two racing allocations may both miss the combined
//! maximum). That is the right direction for upper-bound assertions —
//! a test can only under-read the peak, never over-read it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// The counting allocator. Zero-sized: all state is in module statics,
/// so any instance reads the same counters.
pub struct PeakAlloc;

impl PeakAlloc {
    /// Bytes currently allocated and not yet freed.
    pub fn live_bytes(&self) -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::live_bytes`] since start (or the last
    /// [`Self::reset_peak`]).
    pub fn peak_bytes(&self) -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Restarts the peak at the current live level, so a measurement
    /// window excludes earlier history.
    pub fn reset_peak(&self) {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

fn count_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn count_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates every allocation verbatim to `System`; the
// counters never influence pointers, sizes, or alignment.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            count_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            count_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        count_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            count_dealloc(layout.size());
            count_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator here (the test harness
    // itself would pollute the counters); exercise the trait directly.
    #[test]
    fn counters_track_alloc_and_free() {
        let a = PeakAlloc;
        a.reset_peak();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let base_live = a.live_bytes();
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        assert_eq!(a.live_bytes(), base_live + 4096);
        assert!(a.peak_bytes() >= base_live + 4096);
        let p2 = unsafe { a.realloc(p, layout, 8192) };
        assert!(!p2.is_null());
        assert_eq!(a.live_bytes(), base_live + 8192);
        unsafe {
            a.dealloc(p2, Layout::from_size_align(8192, 8).unwrap());
        }
        assert_eq!(a.live_bytes(), base_live);
        assert!(a.peak_bytes() >= base_live + 8192);
    }
}
