//! The owned value tree all (de)serialization flows through.

use crate::Error;

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative (or any signed) integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered set of key/value entries (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            Value::Float(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value's entries if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The value's string if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Extracts (by clone) a named field from an object's entries.
///
/// # Errors
///
/// [`Error`] if the field is absent.
pub fn get_field(entries: &[(String, Value)], name: &str) -> Result<Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| Error::msg(format!("missing field `{name}`")))
}

/// Like [`get_field`] but yields [`Value::Null`] when absent (for
/// `Option` fields omitted by hand-written JSON).
pub fn get_field_or_null(entries: &[(String, Value)], name: &str) -> Value {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
        .unwrap_or(Value::Null)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::UInt(5).as_i64(), Some(5));
        assert_eq!(Value::Int(-5).as_u64(), None);
        assert_eq!(Value::Float(2.0).as_u64(), Some(2));
        assert_eq!(Value::Float(2.5).as_u64(), None);
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
    }

    #[test]
    fn field_lookup() {
        let obj = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(get_field(&obj, "a").unwrap(), Value::UInt(1));
        assert!(get_field(&obj, "b").is_err());
        assert_eq!(get_field_or_null(&obj, "b"), Value::Null);
    }
}
