//! Workspace-local stand-in for the `serde` crate.
//!
//! The build environment has no crate registry, so this vendored module
//! reimplements the slice of serde the workspace uses. The design trades
//! serde's zero-copy streaming data model for a much smaller one: every
//! serializer collapses to an owned [`value::Value`] tree, and
//! deserializers hand that tree back. The public trait shapes
//! ([`Serialize`], [`Deserialize`], [`Serializer`], [`Deserializer`])
//! keep serde's generic signatures so existing call sites — including
//! `#[serde(with = "...")]` helper modules written against the real crate
//! — compile unchanged.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::Value;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    ///
    /// # Errors
    ///
    /// Propagates serializer failure.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Sinks a [`Serialize`] type can write to. In this stand-in every
/// serializer consumes one fully built [`Value`].
pub trait Serializer: Sized {
    /// Successful output.
    type Ok;
    /// Failure type.
    type Error: From<Error>;

    /// Consumes a built value tree.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// Types that can deserialize themselves. The lifetime mirrors serde's
/// borrowed-data parameter; this value-tree implementation always copies.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from `deserializer`.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failure or shape mismatch.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Sources a [`Deserialize`] type can read from: anything that can yield
/// an owned [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Failure type.
    type Error: From<Error>;

    /// Produces the value tree to deserialize from.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// The canonical serializer: produces a [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// The canonical deserializer: reads from an owned [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn into_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Serializes any value to a [`Value`] tree.
///
/// # Errors
///
/// Propagates [`Serialize`] failure.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Deserializes any type from a [`Value`] tree.
///
/// # Errors
///
/// [`Error`] on shape mismatch.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(value))
}

// ---------------------------------------------------------------------------
// Primitive and container implementations.
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::UInt(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.into_value()?;
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| {
                    D::Error::from(Error::msg(format!("{n} out of range for {}", stringify!($t))))
                })
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Int(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.into_value()?;
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| {
                    D::Error::from(Error::msg(format!("{n} out of range for {}", stringify!($t))))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Float(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.into_value()?;
                let n = v
                    .as_f64()
                    .ok_or_else(|| Error::msg(format!("expected number, got {v:?}")))?;
                Ok(n as $t)
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::from(Error::msg(format!(
                "expected bool, got {other:?}"
            )))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::from(Error::msg(format!(
                "expected string, got {other:?}"
            )))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

/// `&'static str` deserialization leaks the parsed string; it exists so
/// derived impls on error types carrying `&'static str` operation names
/// compile. Such fields are tiny, rare, and live for the process anyway.
impl<'de> Deserialize<'de> for &'static str {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Str(s) => Ok(Box::leak(s.into_boxed_str())),
            other => Err(D::Error::from(Error::msg(format!(
                "expected string, got {other:?}"
            )))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(to_value(item).map_err(S::Error::from)?);
        }
        s.serialize_value(Value::Array(out))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(D::Error::from))
                .collect(),
            other => Err(D::Error::from(Error::msg(format!(
                "expected array, got {other:?}"
            )))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Box::new(
            from_value(d.into_value()?).map_err(D::Error::from)?,
        ))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => v.serialize(s),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Null => Ok(None),
            v => Ok(Some(from_value(v).map_err(D::Error::from)?)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(to_value(&self.$idx).map_err(S::Error::from)?),+];
                s.serialize_value(Value::Array(items))
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.into_value()? {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(D::Error::from(Error::msg(format!(
                                "expected {expected}-tuple, got {} items", items.len()
                            ))));
                        }
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $idx;
                            from_value::<$name>(it.next().expect("length checked"))
                                .map_err(D::Error::from)?
                        },)+))
                    }
                    other => Err(D::Error::from(Error::msg(format!(
                        "expected array for tuple, got {other:?}"
                    )))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, Z: 3)
}

/// Converts a serialized key to the string form JSON objects require.
fn key_to_string<K: Serialize>(key: &K) -> Result<String, Error> {
    match to_value(key)? {
        Value::Str(s) => Ok(s),
        Value::UInt(n) => Ok(n.to_string()),
        Value::Int(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::msg(format!("unsupported map key {other:?}"))),
    }
}

/// Rebuilds a key from its string form: tries the string itself first,
/// then numeric reinterpretations (for integer-keyed maps).
fn key_from_string<'de, K: Deserialize<'de>>(key: String) -> Result<K, Error> {
    let parsed_uint = key.parse::<u64>().ok();
    let parsed_int = key.parse::<i64>().ok();
    match from_value::<K>(Value::Str(key)) {
        Ok(k) => Ok(k),
        Err(first) => {
            if let Some(n) = parsed_uint {
                if let Ok(k) = from_value::<K>(Value::UInt(n)) {
                    return Ok(k);
                }
            }
            if let Some(n) = parsed_int {
                if let Ok(k) = from_value::<K>(Value::Int(n)) {
                    return Ok(k);
                }
            }
            Err(first)
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            entries.push((
                key_to_string(k).map_err(S::Error::from)?,
                to_value(v).map_err(S::Error::from)?,
            ));
        }
        s.serialize_value(Value::Object(entries))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Object(entries) => {
                let mut out = std::collections::BTreeMap::new();
                for (k, v) in entries {
                    out.insert(
                        key_from_string(k).map_err(D::Error::from)?,
                        from_value(v).map_err(D::Error::from)?,
                    );
                }
                Ok(out)
            }
            other => Err(D::Error::from(Error::msg(format!(
                "expected object, got {other:?}"
            )))),
        }
    }
}

impl<K: Serialize, V: Serialize, S2> Serialize for std::collections::HashMap<K, V, S2> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Deterministic output: sort entries by key string.
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            entries.push((
                key_to_string(k).map_err(S::Error::from)?,
                to_value(v).map_err(S::Error::from)?,
            ));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        s.serialize_value(Value::Object(entries))
    }
}

impl<'de, K, V, S2> Deserialize<'de> for std::collections::HashMap<K, V, S2>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S2: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Object(entries) => {
                let mut out = std::collections::HashMap::with_capacity_and_hasher(
                    entries.len(),
                    S2::default(),
                );
                for (k, v) in entries {
                    out.insert(
                        key_from_string(k).map_err(D::Error::from)?,
                        from_value(v).map_err(D::Error::from)?,
                    );
                }
                Ok(out)
            }
            other => Err(D::Error::from(Error::msg(format!(
                "expected object, got {other:?}"
            )))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(to_value(item).map_err(S::Error::from)?);
        }
        s.serialize_value(Value::Array(out))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(D::Error::from))
                .collect(),
            other => Err(D::Error::from(Error::msg(format!(
                "expected array, got {other:?}"
            )))),
        }
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.into_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(from_value::<u64>(to_value(&7u64).unwrap()).unwrap(), 7);
        assert_eq!(from_value::<i32>(to_value(&-3i32).unwrap()).unwrap(), -3);
        assert_eq!(from_value::<f64>(to_value(&1.5f64).unwrap()).unwrap(), 1.5);
        assert!(from_value::<bool>(to_value(&true).unwrap()).unwrap());
        assert_eq!(from_value::<String>(to_value("hi").unwrap()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(from_value::<Vec<u32>>(to_value(&v).unwrap()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(4u64, "four".to_string());
        assert_eq!(
            from_value::<BTreeMap<u64, String>>(to_value(&m).unwrap()).unwrap(),
            m
        );
        let t = (1usize, "x".to_string());
        assert_eq!(
            from_value::<(usize, String)>(to_value(&t).unwrap()).unwrap(),
            t
        );
        assert_eq!(
            from_value::<Option<u8>>(to_value(&None::<u8>).unwrap()).unwrap(),
            None
        );
    }

    #[test]
    fn mismatches_error() {
        assert!(from_value::<bool>(Value::UInt(1)).is_err());
        assert!(from_value::<Vec<u8>>(Value::Str("no".into())).is_err());
        assert!(from_value::<u8>(Value::UInt(300)).is_err());
    }
}
