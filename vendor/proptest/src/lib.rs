//! Workspace-local stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros the workspace's property
//! tests use, backed by a ChaCha8 RNG seeded from the test name — every
//! run of a given test explores the same deterministic case sequence.
//! Failing cases are *not* shrunk (the real crate's headline feature);
//! a failure panics with the generated input's `Debug` form instead.

#![forbid(unsafe_code)]

use rand_chacha::rand_core::{Rng as _, SeedableRng as _};
use rand_chacha::ChaCha8Rng;

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Why a test case did not pass (mirrors the real crate's type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case's preconditions were not met; it is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failing case.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG driving case generation.
pub struct TestRng {
    rng: ChaCha8Rng,
}

impl TestRng {
    /// Seeds from a label (the test function name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, expanded into a 32-byte seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut seed = [0u8; 32];
        for (i, chunk) in seed.chunks_mut(8).enumerate() {
            let mut x = h.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        TestRng {
            rng: ChaCha8Rng::from_seed(seed),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform integer in `[0, bound)` (`bound` ≥ 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound >= 1);
        // Modulo bias is irrelevant at test-case scale.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform choice between boxed strategies ([`prop_oneof!`]'s engine).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].generate(rng)
    }
}

// --- Integer range strategies. ---------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64 + 1;
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i64 - start as i64) as u64 + 1;
                (start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(isize, i64, i32, i16, i8);

// --- Float range strategies. -----------------------------------------------

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

// --- Tuple strategies. -----------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// --- String strategies from a regex subset. --------------------------------

/// `&str` patterns of the form `[a-z0-9...]{m,n}` act as strategies, the
/// one regex shape the workspace uses. Anything else panics loudly.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_char_class_pattern(self).unwrap_or_else(|| {
            panic!("vendored proptest supports only `[class]{{m,n}}` string patterns, got `{self}`")
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let m = counts.trim().parse().ok()?;
            (m, m)
        }
    };
    Some((alphabet, min, max))
}

// --- Collections. ----------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub(crate) min: usize,
        pub(crate) max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A `Vec` strategy: `size` elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// A strategy yielding order-preserving subsequences of `values`
    /// whose length falls in `size`.
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: super::collection::SizeRange,
    }

    /// Creates a [`Subsequence`] strategy.
    pub fn subsequence<T: Clone + std::fmt::Debug>(
        values: Vec<T>,
        size: impl Into<super::collection::SizeRange>,
    ) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into(),
        }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let size = self.size;
            let n = self.values.len();
            // Draw a target length, then mark that many distinct indices.
            let span = (size.max.min(n) - size.min) as u64 + 1;
            let target = size.min + rng.below(span) as usize;
            let mut picked = vec![false; n];
            let mut remaining = target;
            while remaining > 0 {
                let k = rng.below(n as u64) as usize;
                if !picked[k] {
                    picked[k] = true;
                    remaining -= 1;
                }
            }
            self.values
                .iter()
                .zip(picked)
                .filter(|(_, keep)| *keep)
                .map(|(v, _)| v.clone())
                .collect()
        }
    }
}

// --- Macros. ---------------------------------------------------------------

/// Declares deterministic property tests (see the real crate's docs; this
/// stand-in runs `cases` seeded cases and panics on the first failure).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    let __values = ( $( $crate::Strategy::generate(&($strategy), &mut __rng), )* );
                    let __debug_values = format!("{:?}", &__values);
                    let ( $($pat,)* ) = __values;
                    let __run_case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    let __outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(__run_case));
                    match __outcome {
                        Ok(Ok(())) | Ok(Err($crate::TestCaseError::Reject(_))) => {}
                        Ok(Err($crate::TestCaseError::Fail(__reason))) => {
                            panic!(
                                "proptest case {}/{} of `{}` failed for input {}: {}",
                                __case + 1, __config.cases, stringify!($name), __debug_values, __reason
                            );
                        }
                        Err(__panic) => {
                            eprintln!(
                                "proptest case {}/{} of `{}` failed for input {}",
                                __case + 1, __config.cases, stringify!($name), __debug_values
                            );
                            std::panic::resume_unwind(__panic);
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strategy) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = Strategy::generate(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&w));
            let f = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = Strategy::generate(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn determinism_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("combo");
        let strat = (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
            crate::collection::vec(0u32..10, r * c).prop_map(move |v| (r, c, v))
        });
        for _ in 0..50 {
            let (r, c, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), r * c);
        }
        let one = prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..20 {
            assert!([1, 2].contains(&one.generate(&mut rng)));
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = TestRng::deterministic("subseq");
        for _ in 0..50 {
            let s = Strategy::generate(
                &crate::sample::subsequence(vec![1, 2, 3, 4], 0..4),
                &mut rng,
            );
            assert!(s.len() < 4);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, (a, b) in (0u8..4, 0u8..4)) {
            prop_assume!(x != 99);
            prop_assert!(x < 100);
            prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
        }
    }
}
