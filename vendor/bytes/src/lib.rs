//! Workspace-local stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crate registry, so this
//! vendored module provides the (small) slice of the real crate's API the
//! workspace uses: [`Bytes`], a cheaply clonable, immutable byte buffer.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// Cloning is O(1): all clones share one allocation.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: Arc::new(v.to_vec()),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes {
            data: Arc::new(v.as_bytes().to_vec()),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(&b[..2], &[1, 2]);
    }
}
