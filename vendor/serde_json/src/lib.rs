//! Workspace-local stand-in for the `serde_json` crate.
//!
//! Prints and parses JSON text over the vendored serde's owned
//! [`Value`] tree. Floats are formatted with Rust's shortest round-trip
//! representation (`{:?}`), so serialize → parse returns bit-identical
//! numbers; non-finite floats serialize as `null`, matching the real
//! crate's lossy default.

#![forbid(unsafe_code)]

pub use serde::value::Value;

/// JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::msg(e.to_string())
    }
}

/// Serializes a value to a [`Value`] tree.
///
/// # Errors
///
/// Propagates [`serde::Serialize`] failure.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    serde::to_value(value).map_err(Error::from)
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Propagates serialization failure.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value)?, None, 0);
    Ok(out)
}

/// Serializes to two-space-indented JSON text.
///
/// # Errors
///
/// Propagates serialization failure.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value)?, Some(2), 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
///
/// # Errors
///
/// Propagates serialization failure.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Deserializes from JSON text.
///
/// # Errors
///
/// [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<'de, T: serde::Deserialize<'de>>(text: &'de str) -> Result<T, Error> {
    let value = parse(text)?;
    serde::from_value(value).map_err(Error::from)
}

/// Deserializes from JSON bytes.
///
/// # Errors
///
/// [`Error`] on invalid UTF-8, malformed JSON, or shape mismatch.
pub fn from_slice<'de, T: serde::Deserialize<'de>>(bytes: &'de [u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    let value = parse(text)?;
    serde::from_value(value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Printer.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // {:?} is Rust's shortest round-trip float form.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// [`Error`] with byte position on malformed input.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 inside string"))?;
                    let c = s.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-7", "18446744073709551615"] {
            let v = parse(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1f64, 1.0, -2.5e-9, 1234.5678, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn structures_roundtrip() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"nested":null},"c\n":"tab\there"}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        // Pretty output parses back to the same tree.
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n"));
    }

    #[test]
    fn errors_carry_position() {
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[] trailing").is_err());
        assert!(from_str::<bool>("7").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<u32> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_vec(&v).unwrap(), b"[1,2,3]");
        let s: String = from_slice(b"\"hi\"").unwrap();
        assert_eq!(s, "hi");
    }
}
