//! Workspace-local stand-in for the `criterion` crate.
//!
//! Implements the benchmark-harness API surface the workspace uses
//! (`Criterion::bench_function`, `Bencher::iter`, the `criterion_group!`
//! / `criterion_main!` macros) as a simple wall-clock timer: each
//! benchmark warms up briefly, then reports the median per-iteration time
//! over a fixed number of batches. No statistics machinery, no HTML
//! reports — just stable, dependency-free timing output.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    /// Median per-iteration duration, filled in by [`Bencher::iter`].
    measured: Duration,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        std_black_box(f());
        // Calibrate batch size so one batch takes ≳1 ms.
        let start = Instant::now();
        std_black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(50));
        let per_batch =
            (Duration::from_millis(1).as_nanos() / one.as_nanos()).clamp(1, 10_000) as usize;

        const BATCHES: usize = 11;
        let mut samples = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..per_batch {
                std_black_box(f());
            }
            samples.push(t.elapsed() / per_batch as u32);
        }
        samples.sort();
        self.measured = samples[BATCHES / 2];
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its median iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            measured: Duration::ZERO,
        };
        f(&mut b);
        println!("{name:<44} {:>12.3?}/iter", b.measured);
        self
    }

    /// Accepted for compatibility; sampling is fixed in this stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

/// Declares a benchmark group function, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }
}
