//! Workspace-local stand-in for the `crossbeam` crate.
//!
//! Provides the `channel` module the workspace uses: unbounded channels
//! whose `Sender` *and* `Receiver` are clonable and `Sync` (std's mpsc
//! receiver is neither), implemented as a mutex-guarded std channel.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the queue is empty.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => write!(f, "channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders are gone and the queue is empty.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver is dropped.
        ///
        /// # Errors
        ///
        /// [`SendError`] carrying the value back on disconnection.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a channel (clonable; clones share the queue).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        fn guard(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.guard().recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError`] on timeout or disconnection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.guard().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Dequeues a message if one is already waiting.
        ///
        /// # Errors
        ///
        /// [`TryRecvError`] when empty or disconnected.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.guard().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..8u32 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..8).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }
}
