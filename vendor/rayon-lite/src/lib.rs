//! Workspace-local stand-in for the `rayon` crate: just enough data
//! parallelism for the sweep harness.
//!
//! The real rayon is a work-stealing fork/join scheduler with per-thread
//! deques. This shim keeps the two entry points the workspace needs and
//! implements them with the vendored `crossbeam` channel instead:
//!
//! - [`ThreadPool::par_map`] — map a `Vec<T>` to a `Vec<R>` across the
//!   pool. Workers *self-schedule* over a shared atomic cursor (the
//!   channel only ferries one "start helping" job per worker), so load
//!   balances like rayon's stealing does for this shape: whichever
//!   thread finishes an item grabs the next unclaimed index. Results are
//!   written to index-addressed slots, so the output order — and
//!   therefore anything folded from it in index order — is **independent
//!   of thread count and scheduling**.
//! - [`join`] — run two closures in parallel via a scoped thread; the
//!   cheap structured-concurrency primitive for two-way splits.
//!
//! Thread accounting: `num_threads` is the *total* parallelism including
//! the calling thread. A pool built with `num_threads(1)` spawns no
//! workers and runs `par_map` entirely inline, which keeps
//! single-threaded runs free of thread overhead and makes
//! thread-count-invariance tests exercise a genuinely different path.
//!
//! Panics inside the mapped closure are caught per item and re-thrown on
//! the calling thread once the batch drains, mirroring rayon's
//! propagation semantics (no deadlock on a poisoned batch).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use crossbeam::channel::{self, Sender};

/// A queued unit of work for a pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Builder for [`ThreadPool`], mirroring rayon's API shape.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with `num_threads = 0` (auto-detect).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the total parallelism, **including the calling thread**.
    /// `0` means [`available_parallelism`].
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Spawns the pool: `num_threads - 1` workers (the caller is the
    /// last thread).
    pub fn build(self) -> ThreadPool {
        let total = if self.num_threads == 0 {
            available_parallelism()
        } else {
            self.num_threads
        };
        ThreadPool::with_total_threads(total)
    }
}

/// The number of hardware threads, falling back to 1 when unknown.
pub fn available_parallelism() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A persistent pool of worker threads fed by a shared MPMC job queue.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    total: usize,
}

impl ThreadPool {
    fn with_total_threads(total: usize) -> ThreadPool {
        let total = total.max(1);
        let (tx, rx) = channel::unbounded::<Job>();
        let workers = (0..total - 1)
            .map(|i| {
                let rx = rx.clone();
                thread::Builder::new()
                    .name(format!("rayon-lite-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn rayon-lite worker")
            })
            .collect();
        ThreadPool {
            sender: Some(tx),
            workers,
            total,
        }
    }

    /// Total parallelism of the pool, including the calling thread.
    pub fn num_threads(&self) -> usize {
        self.total
    }

    /// Enqueues a fire-and-forget job on the pool workers.
    ///
    /// With no workers (a 1-thread pool) the job runs inline instead.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        if self.workers.is_empty() {
            job();
            return;
        }
        let tx = self.sender.as_ref().expect("pool sender alive");
        assert!(tx.send(Box::new(job)).is_ok(), "pool workers disconnected");
    }

    /// Maps `items` through `f` across the pool and returns results in
    /// input order.
    ///
    /// Work is claimed item-by-item from a shared cursor by up to
    /// `num_threads` threads (pool workers plus the caller, which always
    /// participates — so this never deadlocks and a 1-thread pool is
    /// simply a sequential map). Each result lands in the slot of its
    /// input index: the returned `Vec` is identical for every thread
    /// count.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let batch = Arc::new(Batch {
            slots: items.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            panic: Mutex::new(None),
            f,
        });
        // One helper job per worker, capped at n - 1: the caller drives
        // too, and an item can only be claimed once.
        let helpers = self.workers.len().min(n - 1);
        let (done_tx, done_rx) = channel::unbounded::<usize>();
        for _ in 0..helpers {
            let batch = Arc::clone(&batch);
            let done_tx = done_tx.clone();
            self.spawn(move || batch.drive(&done_tx));
        }
        batch.drive(&done_tx);
        // Every claimed item reports exactly once (even on panic), so
        // this drains without spinning.
        let mut seen = 0;
        while seen < n {
            seen += done_rx.recv().expect("batch drivers alive");
        }
        if let Some(payload) = batch.panic.lock().unwrap_or_else(|e| e.into_inner()).take() {
            panic::resume_unwind(payload);
        }
        batch
            .results
            .iter()
            .map(|slot| {
                lock(slot)
                    .take()
                    .expect("every slot filled once the batch drains")
            })
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the queue so workers fall out of their recv loop.
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Shared state for one `par_map` call.
struct Batch<T, R, F> {
    slots: Vec<Mutex<Option<T>>>,
    results: Vec<Mutex<Option<R>>>,
    cursor: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    f: F,
}

impl<T, R, F> Batch<T, R, F>
where
    F: Fn(T) -> R + Send + Sync,
{
    /// Claims and runs items until the cursor passes the end, reporting
    /// one completion per claimed item.
    fn drive(&self, done: &Sender<usize>) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.slots.len() {
                return;
            }
            let item = lock(&self.slots[i]).take().expect("index claimed once");
            match panic::catch_unwind(AssertUnwindSafe(|| (self.f)(item))) {
                Ok(out) => *lock(&self.results[i]) = Some(out),
                Err(payload) => {
                    let mut first = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                    first.get_or_insert(payload);
                }
            }
            let _ = done.send(1);
        }
    }
}

/// Locks ignoring poison: a panicked item is recorded in `Batch::panic`
/// and re-thrown by the caller, so other slots stay usable.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `a` and `b` in parallel on scoped threads and returns both
/// results, propagating either panic.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 4, 9] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build();
            let out = pool.par_map((0..100u64).collect(), |x| x * x);
            assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn one_thread_pool_spawns_no_workers_and_maps_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build();
        assert_eq!(pool.num_threads(), 1);
        assert!(pool.workers.is_empty());
        assert_eq!(pool.par_map(vec![1, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build();
        for round in 0..5u64 {
            let out = pool.par_map((0..17).collect(), move |x: u64| x + round);
            assert_eq!(out, (0..17).map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_batches_work() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build();
        assert_eq!(pool.par_map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(pool.par_map(vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let work = |x: u64| {
            // Uneven per-item cost so scheduling actually interleaves.
            (0..(x % 7) * 50).fold(x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let baseline = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .par_map((0..64).collect(), work);
        for threads in [2, 3, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build();
            assert_eq!(pool.par_map((0..64).collect(), work), baseline);
        }
    }

    #[test]
    #[should_panic(expected = "boom at 13")]
    fn panics_propagate_to_the_caller() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build();
        let _ = pool.par_map((0..32u32).collect(), |x| {
            if x == 13 {
                panic!("boom at 13");
            }
            x
        });
    }

    #[test]
    fn spawn_runs_detached_jobs() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build();
        let (tx, rx) = channel::unbounded();
        pool.spawn(move || tx.send(99u8).unwrap());
        assert_eq!(rx.recv().unwrap(), 99);
    }

    #[test]
    fn join_returns_both_and_runs_in_parallel() {
        let (a, b) = join(|| 2 + 2, || "right".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "right");
    }

    #[test]
    fn zero_means_available_parallelism() {
        let pool = ThreadPoolBuilder::new().build();
        assert_eq!(pool.num_threads(), available_parallelism().max(1));
    }
}
