//! Workspace-local stand-in for the `rand_chacha` crate.
//!
//! Implements the ChaCha8 stream cipher (RFC 8439 block function with 8
//! rounds) as a deterministic random number generator. Only the API the
//! workspace uses is provided: [`ChaCha8Rng::from_seed`] via
//! [`rand_core::SeedableRng`] and `next_u32`/`next_u64` via
//! [`rand_core::Rng`]. Determinism is the property the workspace relies
//! on; the exact stream is stable for the life of this vendored module.

#![forbid(unsafe_code)]

/// The core RNG traits (a minimal `rand_core`).
pub mod rand_core {
    /// A source of random numbers.
    pub trait Rng {
        /// The next 32 random bits.
        fn next_u32(&mut self) -> u32;

        /// The next 64 random bits.
        fn next_u64(&mut self) -> u64 {
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            (hi << 32) | lo
        }

        /// Fills `dest` with random bytes.
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let word = self.next_u32().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    /// RNGs constructible from a fixed-size seed.
    pub trait SeedableRng: Sized {
        /// The seed type.
        type Seed;

        /// Builds the RNG from a seed.
        fn from_seed(seed: Self::Seed) -> Self;
    }

    /// Legacy alias used by some call sites.
    pub use Rng as RngCore;
}

use rand_core::{Rng, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8-based deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word within `block` (16 = exhausted).
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl Rng for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        let mut c = ChaCha8Rng::from_seed([8; 32]);
        let xs: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..40).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn stream_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::from_seed([1; 32]);
        let n = 20_000;
        let mean = (0..n)
            .map(|_| (rng.next_u32() >> 8) as f64 / (1u32 << 24) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_u64_combines_two_words() {
        let mut a = ChaCha8Rng::from_seed([3; 32]);
        let mut b = ChaCha8Rng::from_seed([3; 32]);
        let lo = b.next_u32() as u64;
        let hi = b.next_u32() as u64;
        assert_eq!(a.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = ChaCha8Rng::from_seed([5; 32]);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
