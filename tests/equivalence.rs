//! Equivalence pins for the interned-index hot paths.
//!
//! The `ResolvedInstance` refactor replaced every string-keyed map in
//! placement, objective evaluation, the Upper-bound search, and both
//! discrete-event engines with dense `u32` indices. These tests prove
//! the rewrite changed *nothing observable*: `Plan`, `SimReport`, and
//! `ServeReport` JSON is byte-identical to golden fixtures captured
//! from the pre-refactor tree (regenerate with
//! `cargo run --release -p s2m3-bench --bin capture_fixtures`), and
//! interning round-trips every id (property-tested over arbitrary
//! multi-model instances).

use proptest::prelude::*;

use s2m3::core::plan::Plan;
use s2m3::core::resolved::ResolvedInstance;
use s2m3::prelude::*;

/// The zoo models pinned by the fixtures (kept in sync with
/// `capture_fixtures`).
const FIXTURE_MODELS: [(&str, usize); 3] = [
    ("CLIP ViT-B/16", 101),
    ("Encoder-only VQA (Small)", 1),
    ("Flint-v0.5-1B", 1),
];

fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn fixture(file: &str) -> String {
    let path = format!("{}/tests/fixtures/{file}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

fn plan_for(name: &str, candidates: usize, n_requests: usize) -> (Instance, Plan) {
    let i = Instance::single_model(name, candidates).unwrap();
    let requests: Vec<_> = (0..n_requests)
        .map(|k| i.request(k as u64, name).unwrap())
        .collect();
    let plan = Plan::greedy(&i, requests).unwrap();
    (i, plan)
}

#[test]
fn plans_are_byte_identical_to_seed_behavior() {
    for (name, candidates) in FIXTURE_MODELS {
        let (_, plan) = plan_for(name, candidates, 2);
        let json = serde_json::to_string_pretty(&plan).unwrap();
        assert_eq!(
            json,
            fixture(&format!("plan_{}.json", slug(name))).trim_end(),
            "{name}: Plan JSON diverged from the pre-refactor fixture"
        );
    }
}

#[test]
fn sim_reports_are_byte_identical_to_seed_behavior() {
    for (name, candidates) in FIXTURE_MODELS {
        let (i, plan) = plan_for(name, candidates, 2);
        let report = simulate(&i, &plan, &SimConfig::default()).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert_eq!(
            json,
            fixture(&format!("sim_{}.json", slug(name))).trim_end(),
            "{name}: SimReport JSON diverged from the pre-refactor fixture"
        );
    }
}

#[test]
fn serve_report_for_default_churn_is_byte_identical_to_seed_behavior() {
    let report = serve(&ServeScenario::churn_default()).unwrap();
    let json = serde_json::to_string_pretty(&report).unwrap();
    assert_eq!(
        json,
        fixture("serve_churn_default.json").trim_end(),
        "ServeReport JSON diverged from the pre-refactor fixture"
    );
}

#[test]
fn batched_serve_report_matches_its_golden_fixture() {
    // Module-level batching in the serve loop is a *deliberate*
    // behavior change behind `ServeScenario::batch`, so it gets its own
    // golden: the default churn scenario with a global batch cap of 4.
    // Regenerate (via `capture_fixtures`) only when batched-dispatch
    // semantics change intentionally — `batch: None` stays pinned by
    // the unbatched fixture above.
    use s2m3::serve::BatchPolicy;
    let scenario = ServeScenario {
        batch: Some(BatchPolicy {
            max_batch: 4,
            per_kind: vec![],
        }),
        ..ServeScenario::churn_default()
    };
    let report = serve(&scenario).unwrap();
    let json = serde_json::to_string_pretty(&report).unwrap();
    assert_eq!(
        json,
        fixture("serve_churn_batched.json").trim_end(),
        "batched ServeReport JSON diverged from its golden fixture"
    );
}

#[test]
fn absent_budget_leaves_every_serve_golden_byte_identical() {
    // PR 10's budget subsystem threads `Option`s through the scenario
    // and the report; with `budget: None` (every pre-budget config)
    // nothing may shift — not a key, not a float, not a line. Both
    // serve goldens are pinned as-captured before the subsystem
    // existed, so this test doubles as the no-regeneration proof.
    let scenario = ServeScenario::churn_default();
    assert!(scenario.budget.is_none(), "default scenario stays uncapped");
    let report = serve(&scenario).unwrap();
    assert!(report.budget.is_none(), "no policy, no budget section");
    let json = serde_json::to_string_pretty(&report).unwrap();
    assert!(
        !json.contains("budget"),
        "uncapped report JSON must not mention the budget at all"
    );
    assert_eq!(
        json,
        fixture("serve_churn_default.json").trim_end(),
        "budget: None must leave the serve golden byte-identical"
    );
}

#[test]
fn chunked_serve_session_matches_the_golden_fixture() {
    // The resumable-kernel guarantee against the pinned bytes: running
    // the default churn scenario in 2 500 s virtual-time slices (pause,
    // resume, repeat) reproduces the golden fixture exactly.
    let mut session = s2m3::serve::ServeSession::new(&ServeScenario::churn_default()).unwrap();
    let mut until_s = 0.0;
    while !session.is_idle() {
        until_s += 2_500.0;
        session.run_until(until_s).unwrap();
    }
    let json = serde_json::to_string_pretty(&session.finish()).unwrap();
    assert_eq!(
        json,
        fixture("serve_churn_default.json").trim_end(),
        "chunked session diverged from the uninterrupted fixture"
    );
}

#[test]
fn resolved_objective_matches_string_objective_across_the_zoo() {
    use s2m3::core::objective::total_latency;
    use s2m3::core::routing::route_request;

    for (name, candidates) in [
        ("CLIP ViT-B/16", 101),
        ("CLIP ResNet-50", 10),
        ("Encoder-only VQA (Small)", 1),
        ("AlignBind-B", 16),
        ("CLIP-Classifier Food-101", 0),
        ("Flint-v0.5-1B", 1),
    ] {
        let i = Instance::single_model(name, candidates).unwrap();
        let r = ResolvedInstance::new(&i).unwrap();
        let p = greedy_place(&i).unwrap();
        let q = i.request(0, name).unwrap();
        let route = route_request(&i, &p, &q).unwrap();
        let via_string = total_latency(&i, &route, &q).unwrap();
        let resolved_route = r.resolve_route(&route);
        let via_index =
            r.total_latency(0, &q.profile, r.requester(), |m| resolved_route[m as usize]);
        assert_eq!(
            via_string.to_bits(),
            via_index.to_bits(),
            "{name}: index path diverged from string path"
        );
    }
}

/// Strategy: a multi-model deployment over one of the two testbeds,
/// small enough that every subset is placeable.
fn arb_instance() -> impl Strategy<Value = Instance> {
    let models = proptest::sample::subsequence(
        vec![
            ("CLIP ViT-B/16", 101usize),
            ("Encoder-only VQA (Small)", 1),
            ("AlignBind-B", 16),
            ("CLIP-Classifier Food-101", 0),
            ("Flint-v0.5-1B", 1),
        ],
        1..=5,
    );
    let edge = prop_oneof![Just(true), Just(false)];
    (models, edge).prop_map(|(models, edge)| {
        let fleet = if edge {
            Fleet::edge_testbed()
        } else {
            Fleet::standard_testbed()
        };
        Instance::on_fleet(fleet, &models).expect("zoo models deploy")
    })
}

proptest! {
    /// Interning round-trips every device and module id: name → index →
    /// name is the identity, indices are dense, and module index order
    /// is module id order.
    #[test]
    fn interning_round_trips_all_ids(instance in arb_instance()) {
        let r = ResolvedInstance::new(&instance).unwrap();
        prop_assert_eq!(r.device_count(), instance.fleet().len());
        prop_assert_eq!(r.module_count(), instance.distinct_modules().len());
        for d in instance.fleet().devices() {
            let di = r.device_index(&d.id).expect("fleet device interns");
            prop_assert_eq!(r.device_name(di), &d.id);
        }
        for m in instance.distinct_modules() {
            let mi = r.module_index(&m.id).expect("distinct module interns");
            prop_assert_eq!(r.module_name(mi), &m.id);
        }
        for w in 1..r.module_count() {
            prop_assert!(r.module_name(w as u32 - 1) < r.module_name(w as u32));
        }
        // Ranks are a permutation consistent with name order.
        for a in 0..r.device_count() as u32 {
            for b in 0..r.device_count() as u32 {
                prop_assert_eq!(
                    r.device_rank(a) < r.device_rank(b),
                    r.device_name(a) < r.device_name(b)
                );
            }
        }
    }
}
