//! Cross-crate integration: full pipelines from zoo to distributed
//! execution, spanning every layer of the workspace.

use std::collections::BTreeMap;

use s2m3::prelude::*;
use s2m3::tensor::ops;

/// Every model family flows through: zoo → placement → routing →
/// simulation → distributed runtime → bit-identical reference output.
#[test]
fn every_task_family_runs_end_to_end() {
    for (name, candidates) in [
        ("CLIP ViT-B/16", 16),
        ("Encoder-only VQA (Small)", 1),
        ("Flint-v0.5-1B", 1),
        ("AlignBind-B", 8),
        ("CLIP-Classifier Food-101", 0),
        ("NLP Connect ViT-GPT2", 0),
    ] {
        let instance = Instance::single_model(name, candidates).unwrap();
        let request = instance.request(0, name).unwrap();
        let plan = Plan::greedy(&instance, vec![request.clone()]).unwrap();

        // Virtual time agrees with the analytic objective.
        let sim = simulate(&instance, &plan, &SimConfig::default()).unwrap();
        let analytic =
            s2m3::core::objective::total_latency(&instance, &plan.routed[0].1, &request).unwrap();
        let simulated = sim.request_latency(0).unwrap();
        assert!(
            (simulated - analytic).abs() < 0.05,
            "{name}: sim {simulated:.3} vs analytic {analytic:.3}"
        );

        // Real execution equals centralized reference bit-for-bit.
        let model = instance.deployment(name).unwrap().model.clone();
        let input = RequestInput::synthetic(&model, "e2e", candidates.max(1));
        let runtime = Runtime::start(&instance, &plan).unwrap();
        let out = runtime.infer(&request, &plan.routed[0].1, &input).unwrap();
        runtime.shutdown();
        let reference = reference::run_model(&model, &input).unwrap();
        assert_eq!(out, reference, "{name}: split changed the output");
    }
}

/// The full multi-task deployment executes concurrently and the shared
/// vision tower produces consistent embeddings for all tasks.
#[test]
fn multi_task_shared_runtime_burst() {
    let instance = Instance::on_fleet(
        Fleet::edge_testbed(),
        &[
            ("CLIP ViT-B/16", 12),
            ("Encoder-only VQA (Small)", 1),
            ("AlignBind-B", 8),
            ("CLIP-Classifier Food-101", 0),
        ],
    )
    .unwrap();
    let requests: Vec<_> = instance
        .deployments()
        .iter()
        .enumerate()
        .map(|(k, d)| instance.request(k as u64, &d.model.name).unwrap())
        .collect();
    let plan = Plan::greedy(&instance, requests).unwrap();

    let inputs: BTreeMap<u64, RequestInput> = plan
        .routed
        .iter()
        .map(|(q, _)| {
            let model = &instance.deployment(&q.model).unwrap().model;
            (q.id, RequestInput::synthetic(model, "burst", 12))
        })
        .collect();
    let runtime = Runtime::start(&instance, &plan).unwrap();
    let outputs = runtime.execute_plan(&plan, &inputs).unwrap();
    runtime.shutdown();
    assert_eq!(outputs.len(), 4);
    for (id, out) in &outputs {
        let model = &instance
            .deployment(&plan.routed[*id as usize].0.model)
            .unwrap()
            .model;
        let reference = reference::run_model(model, &inputs[id]).unwrap();
        assert_eq!(out, &reference, "request {id} diverged");
    }
}

/// Zero-shot evaluation through the *distributed* pipeline matches the
/// centralized accuracy exactly — Table VIII's claim, measured.
#[test]
fn distributed_accuracy_equals_centralized_accuracy() {
    let n = 30;
    let bench = Benchmark::cifar10();
    let dataset = Dataset::generate(&bench, n);
    let zoo = Zoo::standard();
    let model = zoo.model("CLIP ViT-B/16").unwrap();

    // Centralized accuracy via the evaluation harness.
    let central = evaluate(model, &dataset).unwrap();

    // Distributed accuracy via the runtime.
    let instance = Instance::single_model("CLIP ViT-B/16", bench.n_classes).unwrap();
    let base_request = instance.request(0, "CLIP ViT-B/16").unwrap();
    let plan = Plan::greedy(&instance, vec![base_request.clone()]).unwrap();
    let runtime = Runtime::start(&instance, &plan).unwrap();
    let mut correct = 0;
    for (i, sample) in dataset.samples.iter().enumerate() {
        let input = RequestInput {
            modalities: sample.modalities.clone(),
            query: sample.query.clone(),
        };
        let mut q = base_request.clone();
        q.id = i as u64;
        let logits = runtime.infer(&q, &plan.routed[0].1, &input).unwrap();
        if ops::argmax_rows(&logits).unwrap()[0] == sample.label {
            correct += 1;
        }
    }
    runtime.shutdown();
    assert_eq!(correct, central.correct, "accuracy changed under splitting");
}

/// Plans survive a serde round-trip and replay identically in the
/// simulator (operational state is exportable/re-loadable).
#[test]
fn plans_serialize_and_replay() {
    let instance = Instance::single_model("CLIP ViT-B/16", 32).unwrap();
    let requests: Vec<_> = (0..3)
        .map(|k| instance.request(k, "CLIP ViT-B/16").unwrap())
        .collect();
    let plan = Plan::greedy(&instance, requests).unwrap();
    let json = serde_json::to_string(&plan).unwrap();
    let restored: Plan = serde_json::from_str(&json).unwrap();
    let a = simulate(&instance, &plan, &SimConfig::default()).unwrap();
    let b = simulate(&instance, &restored, &SimConfig::default()).unwrap();
    assert_eq!(a, b);
}
