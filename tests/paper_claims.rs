//! The paper's headline claims, asserted as integration tests.
//!
//! Each test names the claim and the paper location it reproduces.
//! Absolute seconds come from the calibrated cost model; the assertions
//! check the *qualitative shape* — who wins, by roughly what factor,
//! where crossovers fall.

use s2m3::baselines::ablations::{
    dedicated_burst, s2m3_latency, s2m3_no_parallel_latency, shared_burst,
};
use s2m3::baselines::centralized::centralized_latency;
use s2m3::core::sharing::SharingReport;
use s2m3::prelude::*;

/// Abstract claim: "S2M3 can reduce memory usage by up to 50% in
/// single-task settings" — CLIP RN50's 76M → 38M split.
#[test]
fn claim_single_task_memory_saving_up_to_50_percent() {
    let zoo = Zoo::standard();
    let best = zoo
        .models()
        .iter()
        .map(|m| 1.0 - m.max_module_params() as f64 / m.total_params() as f64)
        .fold(0.0, f64::max);
    assert!(
        (0.47..0.60).contains(&best),
        "best single-task split saving {:.1}%",
        best * 100.0
    );
}

/// Abstract claim: "and 62% in multi-task settings" — the Table X
/// four-task deployment.
#[test]
fn claim_multi_task_memory_saving_62_percent() {
    let instance = Instance::on_fleet(
        Fleet::edge_testbed(),
        &[
            ("CLIP ViT-B/16", 101),
            ("Encoder-only VQA (Small)", 1),
            ("AlignBind-B", 16),
            ("CLIP-Classifier Food-101", 0),
        ],
    )
    .unwrap();
    let report = SharingReport::for_instance(&instance);
    let saving = report.savings_percent();
    assert!(
        (58.0..64.0).contains(&saving),
        "multi-task saving {saving:.1}%"
    );
}

/// Abstract claim: "reducing inference latency by up to 56.9% on
/// resource-constrained devices, compared to cloud AI" — the encoder-only
/// VQA crossover of Table VI.
#[test]
fn claim_latency_reduction_vs_cloud() {
    let full = Instance::on_fleet(
        Fleet::standard_testbed(),
        &[("Encoder-only VQA (Small)", 1)],
    )
    .unwrap();
    let cloud = centralized_latency(&full, "Encoder-only VQA (Small)", "server").unwrap();
    let edge =
        Instance::on_fleet(Fleet::edge_testbed(), &[("Encoder-only VQA (Small)", 1)]).unwrap();
    let ours = s2m3_latency(&edge, "Encoder-only VQA (Small)").unwrap();
    let reduction = 100.0 * (1.0 - ours / cloud);
    assert!(
        reduction > 40.0,
        "VQA-small reduction vs cloud only {reduction:.1}% (paper: 56.9%)"
    );
}

/// Sec. IV-A: split architecture makes otherwise-infeasible models
/// runnable on the edge (Table VI's dashes become S2M3 numbers).
#[test]
fn claim_split_enables_infeasible_models() {
    let full = Instance::on_fleet(Fleet::standard_testbed(), &[("ImageBind", 16)]).unwrap();
    assert!(
        centralized_latency(&full, "ImageBind", "jetson-a").is_err(),
        "ImageBind must not fit a Jetson centralized"
    );
    // But the split deployment runs on the edge fleet.
    let edge = Instance::on_fleet(Fleet::edge_testbed(), &[("ImageBind", 16)]).unwrap();
    let t = s2m3_latency(&edge, "ImageBind").unwrap();
    assert!(t.is_finite() && t > 0.0);
}

/// Table VII: parallel routing beats sequential routing on two-encoder
/// models (2.48 vs 3.03 in the paper).
#[test]
fn claim_parallel_routing_reduces_latency() {
    let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
    let par = s2m3_latency(&i, "CLIP ViT-B/16").unwrap();
    let seq = s2m3_no_parallel_latency(&i, "CLIP ViT-B/16").unwrap();
    let gain = seq - par;
    assert!((0.05..1.5).contains(&gain), "parallel gain {gain:.2} s");
}

/// Table IX: adding the GPU server to S2M3 beats the centralized cloud —
/// S2M3 exploits both the fast device *and* module-level parallelism.
#[test]
fn claim_s2m3_with_server_beats_cloud() {
    let full = Instance::on_fleet(Fleet::standard_testbed(), &[("CLIP ViT-B/16", 101)]).unwrap();
    let cloud = centralized_latency(&full, "CLIP ViT-B/16", "server").unwrap();
    let request = full.request(0, "CLIP ViT-B/16").unwrap();
    let plan = Plan::greedy(&full, vec![request.clone()]).unwrap();
    let with_server =
        s2m3::core::objective::total_latency(&full, &plan.routed[0].1, &request).unwrap();
    assert!(
        with_server < cloud,
        "S2M3+server {with_server:.2} vs cloud {cloud:.2} (paper: 1.74 vs 2.44)"
    );
}

/// Table X: module sharing costs some latency under simultaneous load
/// (queuing on the shared module) but never more than ~2x, while saving
/// over half the memory.
#[test]
fn claim_sharing_latency_penalty_is_bounded() {
    let instance = Instance::on_fleet(
        Fleet::edge_testbed(),
        &[
            ("CLIP ViT-B/16", 101),
            ("Encoder-only VQA (Small)", 1),
            ("AlignBind-B", 16),
            ("CLIP-Classifier Food-101", 0),
        ],
    )
    .unwrap();
    let shared = shared_burst(&instance).unwrap().max_latency();
    let dedicated = dedicated_burst(&instance).unwrap().max_latency();
    assert!(shared >= dedicated - 1e-9);
    assert!(
        shared < 2.5 * dedicated,
        "sharing penalty too large: {shared:.2} vs {dedicated:.2}"
    );
}

/// Sec. VI-A: the greedy placement achieves the brute-force optimum on
/// the paper's default instance (part of the 89/95).
#[test]
fn claim_greedy_optimal_on_default_instance() {
    let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
    let request = i.request(0, "CLIP ViT-B/16").unwrap();
    let plan = Plan::greedy(&i, vec![request.clone()]).unwrap();
    let greedy = s2m3::core::objective::total_latency(&i, &plan.routed[0].1, &request).unwrap();
    let upper = s2m3::core::upper::optimal_placement(&i).unwrap();
    assert!(
        (greedy - upper.latency).abs() < 1e-6,
        "greedy {greedy:.4} vs optimal {:.4}",
        upper.latency
    );
}

/// Fig. 3 narrative: communication is negligible next to computation in
/// the home network.
#[test]
fn claim_communication_negligible() {
    let i = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
    let request = i.request(0, "CLIP ViT-B/16").unwrap();
    let plan = Plan::greedy(&i, vec![request.clone()]).unwrap();
    let paths = s2m3::core::objective::encoder_paths(&i, &plan.routed[0].1, &request).unwrap();
    let comm: f64 = paths.iter().map(|p| p.input_tx + p.output_tx).sum();
    let comp: f64 = paths.iter().map(|p| p.compute).sum();
    assert!(comm < 0.1 * comp, "comm {comm:.3} vs comp {comp:.3}");
}

/// Table VIII ordering: the accuracy ladder across model scales holds on
/// the synthetic benchmarks (ViT-L > ViT-B; CIFAR-10 easiest;
/// Country-211 hardest).
#[test]
fn claim_accuracy_ordering_matches_paper() {
    let zoo = Zoo::standard();
    let acc = |model: &str, b: &Benchmark| {
        evaluate(zoo.model(model).unwrap(), &Dataset::generate(b, 250))
            .unwrap()
            .percent()
    };
    let b16_cifar = acc("CLIP ViT-B/16", &Benchmark::cifar10());
    let l336_cifar = acc("CLIP ViT-L/14@336", &Benchmark::cifar10());
    let b16_country = acc("CLIP ViT-B/16", &Benchmark::country211());
    assert!(l336_cifar > b16_cifar, "{l336_cifar:.1} vs {b16_cifar:.1}");
    assert!(b16_cifar > b16_country + 30.0);
}
