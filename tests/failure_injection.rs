//! Failure injection: device loss, memory exhaustion, malformed routes,
//! and replanning (the Sec. VI-C "dynamic network conditions" discussion).

use s2m3::core::placement::{greedy_place_with, PlacementOptions};
use s2m3::core::upper::optimal_placement;
use s2m3::core::CoreError;
use s2m3::prelude::*;

/// A device disappears: replanning on the reduced fleet still serves the
/// model (the paper's reallocation-with-switching-cost story).
#[test]
fn device_loss_replanning() {
    let instance = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
    let request = instance.request(0, "CLIP ViT-B/16").unwrap();
    let before = Plan::greedy(&instance, vec![request.clone()]).unwrap();
    let t_before =
        s2m3::core::objective::total_latency(&instance, &before.routed[0].1, &request).unwrap();

    // The laptop (hosting the text encoder) goes away.
    let degraded = instance
        .with_fleet(instance.fleet().without(&["laptop"]))
        .unwrap();
    let request2 = degraded.request(1, "CLIP ViT-B/16").unwrap();
    let after = Plan::greedy(&degraded, vec![request2.clone()]).unwrap();
    let t_after =
        s2m3::core::objective::total_latency(&degraded, &after.routed[0].1, &request2).unwrap();

    // Still serves, at degraded but bounded latency.
    assert!(t_after >= t_before);
    assert!(
        t_after < 20.0 * t_before,
        "replanned latency exploded: {t_after:.2}"
    );
    // Placement no longer references the lost device.
    for (_, d) in after.placement.iter() {
        assert_ne!(d.as_str(), "laptop");
    }
}

/// Losing every capable device makes large models infeasible with a
/// typed, actionable error (pointing at compression/partitioning).
#[test]
fn fleet_exhaustion_is_typed_infeasible() {
    let fleet = Fleet::standard_testbed()
        .restricted_to(&["jetson-a"])
        .unwrap();
    let instance = Instance::on_fleet(fleet, &[("LLaVA-v1.5-13B", 1)]).unwrap();
    match Plan::greedy(&instance, vec![]) {
        Err(CoreError::Infeasible {
            module,
            required_bytes,
            best_remaining_bytes,
        }) => {
            assert!(required_bytes > best_remaining_bytes);
            assert!(!module.as_str().is_empty());
        }
        other => panic!("expected Infeasible, got {other:?}"),
    }
}

/// The runtime surfaces worker-side failures (module not hosted) instead
/// of hanging, and keeps serving afterwards.
#[test]
fn runtime_survives_bad_route_then_serves() {
    let instance = Instance::single_model("CLIP ViT-B/16", 8).unwrap();
    let request = instance.request(0, "CLIP ViT-B/16").unwrap();
    let plan = Plan::greedy(&instance, vec![request.clone()]).unwrap();
    let model = instance.deployment("CLIP ViT-B/16").unwrap().model.clone();
    let input = RequestInput::synthetic(&model, "inject", 8);

    let mut runtime = Runtime::start(&instance, &plan).unwrap();
    runtime.set_timeout(std::time::Duration::from_secs(5));

    // Corrupt the route: send the text encoder to a Jetson that only
    // hosts the head (or nothing).
    let mut bad = plan.routed[0].1.clone();
    let wrong = if plan
        .placement
        .is_placed(&"text/CLIP-B-16".into(), &"jetson-a".into())
    {
        "jetson-b"
    } else {
        "jetson-a"
    };
    bad.assign("text/CLIP-B-16".into(), wrong.into());
    let err = runtime.infer(&request, &bad, &input).unwrap_err();
    assert!(format!("{err}").contains("not hosted"), "got: {err}");

    // The same runtime still serves correct requests. Request ids are
    // unique per submission (the failed request may have left a partial
    // aggregation under its id), so the retry uses a fresh id.
    let mut retry = request;
    retry.id = 99;
    let ok = runtime.infer(&retry, &plan.routed[0].1, &input).unwrap();
    assert!(ok.cols() > 0);
    runtime.shutdown();
}

/// Validation rejects a placement that silently exceeded memory after a
/// manual edit (defense against corrupted plans).
#[test]
fn corrupted_placement_rejected_by_validation() {
    let instance = Instance::single_model("ImageBind", 16).unwrap();
    let request = instance.request(0, "ImageBind").unwrap();
    let plan = Plan::greedy(&instance, vec![request.clone()]).unwrap();

    // Cram the ViT-H tower onto a Jetson behind validation's back.
    let mut corrupted = plan.placement.clone();
    corrupted.place("vision/OpenCLIP-ViT-H-14".into(), "jetson-a".into());
    // Re-validating catches it — either over capacity or mis-hosted.
    let result = s2m3::core::objective::validate(
        &instance,
        &corrupted,
        &[(request, plan.routed[0].1.clone())],
    );
    assert!(matches!(result, Err(CoreError::OverCapacity { .. })));
}

/// Replication keeps the system serving when the primary host of a
/// module is lost mid-deployment: the route falls back to the replica.
#[test]
fn replicas_provide_failover_routes() {
    let instance = Instance::single_model("CLIP ViT-B/16", 101).unwrap();
    let placement = greedy_place_with(&instance, PlacementOptions { replicate: true }).unwrap();
    let vision: s2m3::models::module::ModuleId = "vision/ViT-B-16".into();
    let hosts: Vec<_> = placement.hosts(&vision).cloned().collect();
    assert!(
        hosts.len() >= 2,
        "replication should duplicate the vision tower"
    );

    // Remove the fastest host from the fleet; routing must pick a replica.
    let request = instance.request(0, "CLIP ViT-B/16").unwrap();
    let primary = s2m3::core::routing::route_request(&instance, &placement, &request)
        .unwrap()
        .device_for(&vision)
        .unwrap()
        .clone();
    let degraded = instance
        .with_fleet(instance.fleet().without(&[primary.as_str()]))
        .unwrap();
    // Rebuild a placement view without the lost device.
    let mut surviving = s2m3::core::problem::Placement::new();
    for (m, d) in placement.iter() {
        if d != &primary {
            surviving.place(m.clone(), d.clone());
        }
    }
    let request2 = degraded.request(1, "CLIP ViT-B/16").unwrap();
    let rerouted = s2m3::core::routing::route_request(&degraded, &surviving, &request2).unwrap();
    let fallback = rerouted.device_for(&vision).unwrap();
    assert_ne!(fallback, &primary);
    assert!(hosts.contains(fallback));
}

/// Brute-force Upper reports infeasibility identically to greedy — the
/// two never disagree on feasibility.
#[test]
fn greedy_and_upper_agree_on_feasibility() {
    for names in [vec!["jetson-a"], vec!["jetson-a", "jetson-b"]] {
        let fleet = Fleet::standard_testbed().restricted_to(&names).unwrap();
        let instance = Instance::on_fleet(fleet, &[("ImageBind", 16)]).unwrap();
        let greedy_feasible = Plan::greedy(&instance, vec![]).is_ok();
        let upper_feasible = optimal_placement(&instance).is_ok();
        assert_eq!(greedy_feasible, upper_feasible, "fleet {names:?}");
    }
}
