//! Property-based invariants over randomized instances: the constraints
//! of Problem (4) hold for every greedy plan, greedy never beats the
//! brute-force optimum, parallel never loses to sequential, and the
//! simulator agrees with the analytic objective in the single-request
//! case.

use proptest::prelude::*;

use s2m3::core::objective::{total_latency, total_latency_sequential, validate};
use s2m3::core::upper::optimal_placement;
use s2m3::prelude::*;

/// Models spanning all task families, paired with sensible candidate
/// ranges.
fn arb_model() -> impl Strategy<Value = (&'static str, usize)> {
    prop_oneof![
        (Just("CLIP ResNet-50"), 2usize..128),
        (Just("CLIP ViT-B/16"), 2usize..128),
        (Just("CLIP ViT-L/14"), 2usize..64),
        (Just("CLIP ResNet-50x16"), 2usize..64),
        (Just("Encoder-only VQA (Small)"), Just(1usize)),
        (Just("Encoder-only VQA (Large)"), Just(1usize)),
        (Just("Flint-v0.5-1B"), Just(1usize)),
        (Just("xtuner-Phi-3-Mini"), Just(1usize)),
        (Just("AlignBind-B"), 2usize..32),
        (Just("CLIP-Classifier Food-101"), Just(1usize)),
        (Just("NLP Connect ViT-GPT2"), Just(1usize)),
    ]
}

/// Fleet subsets that always contain the requester.
fn arb_fleet() -> impl Strategy<Value = Fleet> {
    prop_oneof![
        Just(vec!["jetson-a", "jetson-b"]),
        Just(vec!["desktop", "laptop", "jetson-a"]),
        Just(vec!["desktop", "laptop", "jetson-b", "jetson-a"]),
        Just(vec!["server", "desktop", "laptop", "jetson-b", "jetson-a"]),
        Just(vec!["laptop", "jetson-a"]),
        Just(vec!["server", "jetson-a"]),
    ]
    .prop_map(|names| Fleet::standard_testbed().restricted_to(&names).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Constraints (4b)–(4d) hold for every feasible greedy plan.
    #[test]
    fn greedy_plans_satisfy_problem_constraints(
        (model, candidates) in arb_model(),
        fleet in arb_fleet(),
    ) {
        let Ok(instance) = Instance::on_fleet(fleet, &[(model, candidates)]) else { return Ok(()); };
        let Ok(request) = instance.request(0, model) else { return Ok(()); };
        match Plan::greedy(&instance, vec![request]) {
            Ok(plan) => {
                validate(&instance, &plan.placement, &plan.routed).unwrap();
                // Every model module is placed exactly once (no replication
                // by default).
                prop_assert_eq!(
                    plan.placement.len(),
                    instance.distinct_modules().len()
                );
            }
            Err(s2m3::core::CoreError::Infeasible { .. }) => {} // fine: small fleet
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }

    /// The brute-force optimum lower-bounds the greedy everywhere, and
    /// both agree on feasibility.
    #[test]
    fn optimal_lower_bounds_greedy(
        (model, candidates) in arb_model(),
        fleet in arb_fleet(),
    ) {
        let Ok(instance) = Instance::on_fleet(fleet, &[(model, candidates)]) else { return Ok(()); };
        let Ok(request) = instance.request(0, model) else { return Ok(()); };
        let greedy = Plan::greedy(&instance, vec![request.clone()]);
        let upper = optimal_placement(&instance);
        prop_assert_eq!(greedy.is_ok(), upper.is_ok());
        if let (Ok(plan), Ok(opt)) = (greedy, upper) {
            let g = total_latency(&instance, &plan.routed[0].1, &request).unwrap();
            prop_assert!(
                g + 1e-9 >= opt.latency,
                "greedy {} beat 'optimal' {}", g, opt.latency
            );
        }
    }

    /// Parallel routing never loses to sequential routing, and both are
    /// strictly positive.
    #[test]
    fn parallel_never_slower_than_sequential(
        (model, candidates) in arb_model(),
        fleet in arb_fleet(),
    ) {
        let Ok(instance) = Instance::on_fleet(fleet, &[(model, candidates)]) else { return Ok(()); };
        let Ok(request) = instance.request(0, model) else { return Ok(()); };
        let Ok(plan) = Plan::greedy(&instance, vec![request.clone()]) else { return Ok(()); };
        let par = total_latency(&instance, &plan.routed[0].1, &request).unwrap();
        let seq = total_latency_sequential(&instance, &plan.routed[0].1, &request).unwrap();
        prop_assert!(par > 0.0);
        prop_assert!(par <= seq + 1e-9, "parallel {} > sequential {}", par, seq);
    }

    /// Single-request simulation matches the analytic objective within
    /// scheduler resolution, for any model and fleet.
    #[test]
    fn simulator_agrees_with_objective(
        (model, candidates) in arb_model(),
        fleet in arb_fleet(),
    ) {
        let Ok(instance) = Instance::on_fleet(fleet, &[(model, candidates)]) else { return Ok(()); };
        let Ok(request) = instance.request(0, model) else { return Ok(()); };
        let Ok(plan) = Plan::greedy(&instance, vec![request.clone()]) else { return Ok(()); };
        let analytic = total_latency(&instance, &plan.routed[0].1, &request).unwrap();
        let report = simulate(&instance, &plan, &SimConfig::default()).unwrap();
        let simulated = report.request_latency(0).unwrap();
        prop_assert!(
            (simulated - analytic).abs() < 0.05 + 0.01 * analytic,
            "sim {} vs analytic {}", simulated, analytic
        );
    }

    /// Sharing accounting: shared params never exceed dedicated params,
    /// and equal them exactly when models share nothing.
    #[test]
    fn sharing_is_monotone(extra in proptest::sample::subsequence(
        vec!["Encoder-only VQA (Small)", "AlignBind-B", "CLIP-Classifier Food-101", "NLP Connect ViT-GPT2"], 0..4))
    {
        let mut models: Vec<(&str, usize)> = vec![("CLIP ViT-B/16", 16)];
        models.extend(extra.iter().map(|m| (*m, 16)));
        let instance = Instance::on_fleet(Fleet::edge_testbed(), &models).unwrap();
        let report = s2m3::core::sharing::SharingReport::for_instance(&instance);
        let last = report.rows.last().unwrap();
        prop_assert!(last.cumulative_shared_params <= last.cumulative_dedicated_params);
        let dedicated = instance.dedicated();
        let dreport = s2m3::core::sharing::SharingReport::for_instance(&dedicated);
        let dlast = dreport.rows.last().unwrap();
        prop_assert_eq!(dlast.cumulative_shared_params, dlast.cumulative_dedicated_params);
    }

    /// Simulated multi-request makespan is monotone in the request count
    /// and bounded by serial execution.
    #[test]
    fn pipelining_bounds(n in 1usize..6) {
        let instance = Instance::single_model("CLIP ViT-B/16", 32).unwrap();
        let requests: Vec<_> = (0..n as u64)
            .map(|k| instance.request(k, "CLIP ViT-B/16").unwrap())
            .collect();
        let plan = Plan::greedy(&instance, requests).unwrap();
        let report = simulate(&instance, &plan, &SimConfig::default()).unwrap();
        let single = {
            let one = Plan {
                placement: plan.placement.clone(),
                routed: vec![plan.routed[0].clone()],
            };
            simulate(&instance, &one, &SimConfig::default())
                .unwrap()
                .makespan
        };
        prop_assert!(report.makespan + 1e-9 >= single);
        prop_assert!(report.makespan <= n as f64 * single + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharding conserves weights and FLOPs and keeps shard ids distinct.
    #[test]
    fn sharding_conserves_resources(k in 1usize..8) {
        let zoo = Zoo::standard();
        let llm = zoo.catalog().get_by_name("llm/Vicuna-7B").unwrap().clone();
        let shards = s2m3::core::partition::shard_module(&llm, k);
        prop_assert_eq!(shards.len(), k);
        let params: u64 = shards.iter().map(|s| s.params).sum();
        prop_assert!(params <= llm.params && params >= llm.params - k as u64);
        let flops: f64 = shards.iter().map(|s| s.gflops_per_unit).sum();
        prop_assert!((flops - llm.gflops_per_unit).abs() < 1e-6);
        let ids: std::collections::BTreeSet<_> = shards.iter().map(|s| s.id.clone()).collect();
        prop_assert_eq!(ids.len(), k);
    }

    /// Balanced routing still satisfies constraint (4b): every assignment
    /// targets a hosting device; and it never uses more devices than the
    /// placement offers.
    #[test]
    fn balanced_routing_respects_hosting(n in 1usize..8) {
        let instance = Instance::single_model("CLIP ViT-B/16", 16).unwrap();
        let placement = s2m3::core::placement::greedy_place_with(
            &instance,
            s2m3::core::placement::PlacementOptions { replicate: true },
        )
        .unwrap();
        let requests: Vec<_> = (0..n as u64)
            .map(|k| instance.request(k, "CLIP ViT-B/16").unwrap())
            .collect();
        let routes =
            s2m3::core::routing::route_requests_balanced(&instance, &placement, &requests)
                .unwrap();
        prop_assert_eq!(routes.len(), n);
        for route in &routes {
            for (m, d) in route.iter() {
                prop_assert!(placement.is_placed(m, d), "{} on non-host {}", m, d);
            }
        }
    }

    /// Replanning onto an unchanged fleet is a no-op; replanning onto a
    /// strictly larger fleet never increases latency.
    #[test]
    fn replanning_is_monotone(candidates in 4usize..128) {
        let edge = Instance::single_model("CLIP ViT-B/16", candidates).unwrap();
        let old = s2m3::core::placement::greedy_place(&edge).unwrap();
        let same = s2m3::core::adaptive::replan(&edge, &old).unwrap();
        prop_assert!(same.migrations.is_empty());
        let bigger = edge.with_fleet(Fleet::standard_testbed()).unwrap();
        let up = s2m3::core::adaptive::replan(&bigger, &old).unwrap();
        // Greedy is a heuristic: adding a device usually helps and never
        // regresses by more than its myopia allows (bounded, not strict,
        // monotonicity — the server's per-execution overhead can make it
        // a bad home for mid-size batches the greedy still picks).
        prop_assert!(
            up.new_latency_s <= up.old_latency_s.unwrap() * 1.3 + 0.2,
            "grew fleet, latency {} -> {}", up.old_latency_s.unwrap(), up.new_latency_s
        );
    }
}
