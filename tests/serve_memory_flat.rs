//! Heap-bound proof for memory-flat streaming serve: with
//! `ServeScenario::streaming` on, peak heap growth is O(in-flight),
//! not O(arrivals).
//!
//! The whole test binary runs under the counting [`PeakAlloc`] global
//! allocator (its counters are process-wide, which is why these
//! measurements live in their own integration-test binary: `cargo`
//! gives each `tests/*.rs` file its own process, so no other test's
//! allocations pollute the peaks; the two measurements within are
//! serialized through one `#[test]`).
//!
//! The assertion style is *ratio*, not absolute bytes: scale requests
//! by 25–50× and require the peak-heap delta to stay within a small
//! constant factor, so the test is insensitive to allocator slop and
//! debug-vs-release layout while still catching any O(arrivals)
//! regression (which would scale the peak by ~25×). The exact path,
//! measured alongside, demonstrates the contrast: its peak grows with
//! the request count.

use peak_alloc::PeakAlloc;
use s2m3::serve::{AdmissionPolicy, ServeScenario, StreamingConfig};
use s2m3::sim::workload::ArrivalProcess;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

fn scenario(n: usize, streaming: bool) -> ServeScenario {
    let mut s = ServeScenario::churn_default();
    s.requests = n;
    // Offered load well above capacity: the shedding bound (not the
    // arrival rate) caps the queues, so in-flight state stays O(1)
    // while arrivals stream through.
    s.arrivals = ArrivalProcess::Poisson { rate_per_s: 3.0 };
    s.admission = AdmissionPolicy::ShedOnOverload { max_queue: 48 };
    if streaming {
        s.streaming = Some(StreamingConfig::default());
        s.max_windows = Some(64);
    }
    s
}

/// Runs the scenario and returns the run's peak-heap delta in bytes
/// (peak live bytes during the run minus live bytes before it).
fn peak_delta_of(s: &ServeScenario) -> usize {
    let before = ALLOC.live_bytes();
    ALLOC.reset_peak();
    let report = s2m3::serve::serve(s).unwrap();
    assert_eq!(report.arrived, s.requests as u64);
    assert_eq!(report.completed + report.shed, report.arrived);
    ALLOC.peak_bytes().saturating_sub(before)
}

#[test]
fn streaming_peak_heap_is_flat_in_request_count() {
    // `cargo test -q` (tier-1) is a debug build — keep it minutes-free
    // there; the release run covers the ISSUE's 5M-request bound.
    let (small_n, big_n) = if cfg!(debug_assertions) {
        (4_000, 100_000)
    } else {
        (100_000, 5_000_000)
    };
    let scale = big_n / small_n; // 25–50×

    // Warm-up run so one-time global/lazy allocations (fleet tables,
    // zoo interning) don't count against the small run's peak.
    let _ = peak_delta_of(&scenario(512, true));

    let small = peak_delta_of(&scenario(small_n, true));
    let big = peak_delta_of(&scenario(big_n, true));
    assert!(
        big < small.saturating_mul(3) + (1 << 20),
        "streaming peak heap must be flat: {small_n} requests peaked at \
         {small} B but {big_n} requests peaked at {big} B ({scale}x more \
         arrivals must not mean more than ~constant heap)"
    );

    // Contrast: the exact path keeps per-request state for the whole
    // run, so its peak grows with the request count and overtakes the
    // streaming path's.
    let exact_big = peak_delta_of(&scenario(big_n, false));
    assert!(
        exact_big > big.saturating_mul(2),
        "exact-mode peak ({exact_big} B at {big_n} requests) should dwarf \
         the streaming peak ({big} B); if not, the exact path stopped \
         retaining per-request state and the contrast baseline is stale"
    );
}
