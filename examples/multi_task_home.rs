//! Multi-task smart home: the paper's Table X scenario.
//!
//! Four tasks — image-text retrieval, encoder-only VQA, tri-modal
//! alignment, and image classification — arrive simultaneously at a home
//! edge fleet. Module sharing deploys each common module once (the ViT
//! vision tower serves all four tasks), trading a little queuing latency
//! for a 61.5% memory saving.
//!
//! ```sh
//! cargo run --release -p s2m3 --example multi_task_home
//! ```

use std::collections::BTreeMap;

use s2m3::core::sharing::SharingReport;
use s2m3::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = Instance::on_fleet(
        Fleet::edge_testbed(),
        &[
            ("CLIP ViT-B/16", 101),
            ("Encoder-only VQA (Small)", 1),
            ("AlignBind-B", 16),
            ("CLIP-Classifier Food-101", 0),
        ],
    )?;

    // Memory accounting: shared vs dedicated deployment (Sec. IV-B).
    let report = SharingReport::for_instance(&instance);
    println!("task progression (cumulative parameters):");
    for row in &report.rows {
        println!(
            "  {:28} shared {:>4}M   dedicated {:>4}M",
            row.model,
            row.cumulative_shared_params / 1_000_000,
            row.cumulative_dedicated_params / 1_000_000
        );
    }
    println!(
        "sharing saves {:.1}% of deployment memory\n",
        report.savings_percent()
    );

    // One simultaneous request per task; greedy placement shares modules.
    let requests: Vec<_> = instance
        .deployments()
        .iter()
        .enumerate()
        .map(|(k, d)| instance.request(k as u64, &d.model.name))
        .collect::<Result<_, _>>()?;
    let plan = Plan::greedy(&instance, requests)?;

    println!("shared placement:");
    for (module, device) in plan.placement.iter() {
        println!("  {module} -> {device}");
    }

    // Virtual-time burst: watch the queuing on shared modules (Table X).
    let sim = simulate(&instance, &plan, &SimConfig::default())?;
    println!("\nsimulated burst (all four tasks at t=0):");
    for (id, timing) in &sim.requests {
        let model = &plan.routed[*id as usize].0.model;
        println!("  request {id} ({model}): {:.2} s", timing.latency());
    }
    println!("  makespan {:.2} s", sim.makespan);

    // And execute the burst for real on the distributed runtime.
    let inputs: BTreeMap<u64, RequestInput> = plan
        .routed
        .iter()
        .map(|(q, _)| {
            let model = &instance.deployment(&q.model).expect("deployed").model;
            let candidates = q.profile.text_units as usize;
            (
                q.id,
                RequestInput::synthetic(model, &format!("home-{}", q.id), candidates.max(1)),
            )
        })
        .collect();
    let runtime = Runtime::start(&instance, &plan)?;
    let outputs = runtime.execute_plan(&plan, &inputs)?;
    runtime.shutdown();
    println!(
        "\ndistributed runtime completed {} requests ✓",
        outputs.len()
    );
    Ok(())
}
