//! Capacity-frontier sweep: how much traffic each fleet size sustains.
//!
//! Fans the churn serving scenario over a (seed × arrival-rate ×
//! fleet-size) grid, runs every seeded replica on a work-stealing
//! thread pool, and prints the cross-replica distribution bands plus
//! the capacity frontier — the largest arrival-rate scale each fleet
//! size carries while keeping the deadline-miss rate under 1%.
//!
//! The report is deterministic: the same grid produces byte-identical
//! JSON at any thread count.
//!
//! ```sh
//! cargo run --release -p s2m3 --example sweep_frontier
//! ```

use s2m3::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The base scenario: churn serving, trimmed for a demo. ---------
    let mut base = ServeScenario::churn_default();
    base.requests = 800;
    base.snapshot_every = 100;
    base.seed = "example/sweep-frontier".to_string();

    // --- 2. The grid: 4 seeds x 4 rate scales x 3 fleet sizes. ------------
    //
    // Replica seeds are shared across cells (common random numbers), so
    // a cell-to-cell difference is a treatment effect of the rate or
    // the fleet, not sampling noise.
    let spec = SweepSpec {
        base,
        seeds: 4,
        rate_scales: vec![0.5, 1.0, 2.0, 4.0],
        fleet_sizes: vec![2, 3, 4],
        bin_s: 600.0,
        miss_budget: 0.01,
        threads: 0, // all available cores
    };
    println!(
        "sweeping {} cells x {} seeds = {} replicas ...\n",
        spec.cell_count(),
        spec.seeds,
        spec.replica_count()
    );

    // --- 3. Run and print. ------------------------------------------------
    let report = run_sweep(&spec)?;
    print!("{}", report.render_summary());

    // --- 4. The frontier, as data. ----------------------------------------
    //
    // Each point answers "what is the max sustainable offered rate at
    // this fleet size?" — the capacity-planning curve.
    for point in &report.frontier {
        if let (Some(scale), Some(rate)) = (point.max_rate_scale, point.max_rate_per_s) {
            println!(
                "fleet of {}: sustains x{scale:.1} base traffic ({rate:.3} req/s) within budget",
                point.fleet_size
            );
        }
    }
    Ok(())
}
