//! Cost × SLO frontier: what a fleet-wide budget cap costs in latency.
//!
//! Serves the same churn workload under a range of per-window
//! device-second caps and prints, for each cap, the spend the fleet
//! actually used, the p95 latency, the deadline-miss rate, and the
//! latency price (total queueing delay the cap injected) — the table a
//! capacity planner reads the cap-vs-SLO trade-off from.
//!
//! Every dispatch reserves its route's priced cost before it runs, so
//! no window ever overspends: tightening the cap never breaks the
//! budget, it converts headroom into deferred (or shed) work instead.
//!
//! ```sh
//! cargo run --release -p s2m3 --example budget_frontier
//! ```

use s2m3::prelude::*;
use s2m3::serve::{BudgetEnforcement, BudgetPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The base scenario: churn serving, trimmed for a demo. ---------
    let mut base = ServeScenario::churn_default();
    base.requests = 1_500;
    base.seed = "example/budget-frontier".to_string();

    // The uncapped run anchors the table: its spend is what the fleet
    // uses when the budget never binds.
    let uncapped = serve(&base)?;
    let busy_s: f64 = uncapped.devices.iter().map(|d| d.busy_s).sum();
    let window_s = 60.0;
    let free_spend_per_window = busy_s * window_s / uncapped.makespan_s;
    println!(
        "uncapped: {:.2} device-seconds per {:.0} s window, p95 {:.3} s, {:.2}% miss\n",
        free_spend_per_window,
        window_s,
        uncapped.latency.p95_s,
        uncapped.miss_rate * 100.0
    );

    // --- 2. Sweep the cap from generous to starved. ------------------------
    //
    // Defer-then-shed: over-cap work waits for the next window while it
    // can still make its deadline, and sheds once it cannot.
    println!(
        "{:>10}  {:>12}  {:>10}  {:>8}  {:>8}  {:>8}  {:>13}",
        "cap/window", "spend/window", "adherence", "p95 s", "miss %", "shed", "latency price"
    );
    for scale in [2.0, 1.0, 0.75, 0.5, 0.35, 0.25] {
        let mut scenario = base.clone();
        let mut policy = BudgetPolicy::device_seconds(free_spend_per_window * scale);
        policy.window_s = window_s;
        policy.enforcement = BudgetEnforcement::DeferThenShed;
        scenario.budget = Some(policy);

        let report = serve(&scenario)?;
        let budget = report.budget.as_ref().expect("capped run reports budget");
        println!(
            "{:>10.2}  {:>12.2}  {:>9.1}%  {:>8.3}  {:>8.2}  {:>8}  {:>11.1} s",
            budget.cap_per_window,
            budget.spend_total / budget.windows_total.max(1) as f64,
            budget.adherence * 100.0,
            report.latency.p95_s,
            report.miss_rate * 100.0,
            report.shed,
            budget.latency_price_s,
        );
    }

    // --- 3. Read the frontier. ---------------------------------------------
    //
    // Above the uncapped spend the budget never binds and the rows match
    // the anchor; below it, deferrals first buy cost savings with p95
    // (the latency price), then shedding starts trading completed work.
    println!(
        "\nthe knee sits where spend/window first drops below the cap:\n\
         cheaper windows are bought with queueing delay, then with shed work"
    );
    Ok(())
}
