//! Placement explorer: compare the greedy placement against the
//! brute-force optimum and every centralized alternative for a model of
//! your choice, under varying device availability (the Table IX study).
//!
//! ```sh
//! cargo run --release -p s2m3 --example placement_explorer -- "CLIP ViT-L/14" 101
//! ```

use s2m3::baselines::centralized::centralized_latency;
use s2m3::core::upper::optimal_placement;
use s2m3::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let model = args.next().unwrap_or_else(|| "CLIP ViT-B/16".to_string());
    let candidates: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(101);

    println!("model: {model}  (candidate prompts: {candidates})\n");

    // Centralized options on the full testbed.
    let full = Instance::on_fleet(Fleet::standard_testbed(), &[(&model, candidates)])?;
    println!("centralized deployments:");
    for dev in ["server", "desktop", "laptop", "jetson-a"] {
        match centralized_latency(&full, &model, dev) {
            Ok(t) => println!("  {dev:10} {t:>8.2} s"),
            Err(e) => println!("  {dev:10}        – ({e})"),
        }
    }

    // S2M3 under shrinking fleets.
    println!("\nS2M3 under device availability (requester jetson-a):");
    for names in [
        vec!["jetson-b", "jetson-a"],
        vec!["desktop", "laptop", "jetson-a"],
        vec!["desktop", "laptop", "jetson-b", "jetson-a"],
        vec!["server", "desktop", "laptop", "jetson-b", "jetson-a"],
    ] {
        let fleet = Fleet::standard_testbed().restricted_to(&names)?;
        let instance = Instance::on_fleet(fleet, &[(&model, candidates)])?;
        let request = instance.request(0, &model)?;
        match Plan::greedy(&instance, vec![request.clone()]) {
            Ok(plan) => {
                let greedy = total_latency(&instance, &plan.routed[0].1, &request)?;
                let upper = optimal_placement(&instance)?;
                let tag = if (greedy - upper.latency).abs() < 1e-6 {
                    "= optimal"
                } else {
                    "> optimal"
                };
                println!(
                    "  {:38} greedy {greedy:>6.2} s   upper {:>6.2} s  {tag}",
                    names.join("+"),
                    upper.latency
                );
                for (m, d) in plan.placement.iter() {
                    println!("      {m} -> {d}");
                }
            }
            Err(e) => println!("  {:38} infeasible: {e}", names.join("+")),
        }
    }
    Ok(())
}
