//! VQA assistant: decoder-only VQA (LLaVA-style) on the edge, the
//! paper's motivating smartphone-assistant workload.
//!
//! Runs a batch of visual questions through Flint-v0.5-1B (ViT-L/14@336
//! vision tower + TinyLlama generative head) split across the fleet, and
//! reports answer accuracy against the synthetic VQA-v2 benchmark plus
//! the latency advantage over shipping every request to the cloud.
//!
//! ```sh
//! cargo run --release -p s2m3 --example vqa_assistant
//! ```

use s2m3::baselines::centralized::centralized_latency;
use s2m3::data::table_viii;
use s2m3::prelude::*;
use s2m3::tensor::ops;

const MODEL: &str = "Flint-v0.5-1B";
const QUESTIONS: usize = 40;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Deploy on the edge fleet.
    let instance = Instance::single_model(MODEL, 1)?;
    let request = instance.request(0, MODEL)?;
    let plan = Plan::greedy(&instance, vec![request.clone()])?;

    println!("placement:");
    for (m, d) in plan.placement.iter() {
        println!("  {m} -> {d}");
    }

    // Latency: edge split vs cloud round-trip.
    let edge = total_latency(&instance, &plan.routed[0].1, &request)?;
    let cloud_instance = Instance::on_fleet(Fleet::standard_testbed(), &[(MODEL, 1)])?;
    let cloud = centralized_latency(&cloud_instance, MODEL, "server")?;
    println!("\nper-question latency: edge {edge:.2} s vs cloud {cloud:.2} s");

    // Answer a batch of benchmark questions on the real runtime.
    let bench = Benchmark::vqa_v2();
    let dataset = Dataset::generate(&bench, QUESTIONS);
    let runtime = Runtime::start(&instance, &plan)?;
    let mut correct = 0;
    for (i, sample) in dataset.samples.iter().enumerate() {
        let input = RequestInput {
            modalities: sample.modalities.clone(),
            query: sample.query.clone(),
        };
        let mut q = request.clone();
        q.id = i as u64;
        let logits = runtime.infer(&q, &plan.routed[0].1, &input)?;
        if ops::argmax_rows(&logits)?[0] == sample.label {
            correct += 1;
        }
    }
    runtime.shutdown();

    let acc = 100.0 * correct as f64 / QUESTIONS as f64;
    let paper = table_viii::rows()
        .into_iter()
        .find(|r| r.model == MODEL && r.benchmark == "vqa-v2")
        .map(|r| r.paper_s2m3)
        .unwrap_or_default();
    println!(
        "VQA-v2 answer accuracy: {acc:.1}% over {QUESTIONS} questions (paper S2M3: {paper:.1}%)"
    );
    println!("(distributed execution — every answer produced by modules on different devices)");
    Ok(())
}
