//! Online serving walkthrough: the `s2m3-serve` control plane driving a
//! weighted multi-source, multi-model request mix through admission
//! control, module-level batching, rolling SLO windows, and live
//! adaptive replanning while the fleet churns — the production-shaped
//! version of Sec. VI-C's adaptive-reallocation sketch.
//!
//! ```sh
//! cargo run --release -p s2m3 --example online_serving
//! ```

use s2m3::core::problem::DeadlineClass;
use s2m3::models::module::ModuleKind;
use s2m3::prelude::*;
use s2m3::serve::{
    BatchPolicy, ClassShare, FleetEvent, FleetEventKind, KindBatchCap, ModelDeployment, ModelMix,
    ModelWeight, ReplanPolicy, TrafficSource,
};
use s2m3::sim::workload::ArrivalProcess;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Two models, three traffic sources, one workload layer. --------
    //
    // A retrieval service (CLIP) and a lightweight classifier share the
    // fleet. Traffic comes from three devices, each with its own arrival
    // process, budget share, and model mix — the `WorkloadSpec` surface
    // that the offline simulator materializes from too.
    let mut scenario = ServeScenario::churn_default();
    scenario.requests = 2_000;
    scenario.seed = "example/online-serving".to_string();
    scenario.models = vec![
        ModelDeployment {
            name: "CLIP ViT-B/16".to_string(),
            candidates: 101,
        },
        ModelDeployment {
            name: "CLIP-Classifier Food-101".to_string(),
            candidates: 0,
        },
    ];
    scenario.sources = vec![
        // The requester Jetson: bursty interactive retrieval, 60% of
        // the budget, weighted 3:1 toward CLIP.
        TrafficSource {
            device: "jetson-a".to_string(),
            arrivals: ArrivalProcess::Mmpp {
                rates_per_s: vec![0.05, 0.5],
                mean_dwell_s: 120.0,
            },
            weight: Some(3.0),
            mix: Some(ModelMix::Weighted {
                weights: vec![
                    ModelWeight {
                        model: "CLIP ViT-B/16".to_string(),
                        weight: 3.0,
                    },
                    ModelWeight {
                        model: "CLIP-Classifier Food-101".to_string(),
                        weight: 1.0,
                    },
                ],
            }),
        },
        // The laptop: steady classifier-only telemetry.
        TrafficSource {
            device: "laptop".to_string(),
            arrivals: ArrivalProcess::Uniform { interval_s: 8.0 },
            weight: Some(1.0),
            mix: Some(ModelMix::Trace {
                models: vec!["CLIP-Classifier Food-101".to_string()],
            }),
        },
        // The desktop: a diurnal mixed feed on the scenario-wide mix.
        TrafficSource {
            device: "desktop".to_string(),
            arrivals: ArrivalProcess::Diurnal {
                base_rate_per_s: 0.02,
                peak_rate_per_s: 0.3,
                period_s: 1_500.0,
            },
            weight: Some(1.0),
            mix: None,
        },
    ];
    // Scenario-wide mix for sources without their own (the desktop).
    scenario.mix = Some(ModelMix::Weighted {
        weights: vec![
            ModelWeight {
                model: "CLIP ViT-B/16".to_string(),
                weight: 1.0,
            },
            ModelWeight {
                model: "CLIP-Classifier Food-101".to_string(),
                weight: 1.0,
            },
        ],
    });
    // Deadline classes: a quarter of the stream is interactive (tight
    // SLO, EDF priority); the rest tolerates queuing.
    scenario.classes = vec![
        ClassShare {
            class: DeadlineClass {
                name: "interactive".to_string(),
                deadline_s: 12.0,
                priority: 10,
            },
            weight: 1.0,
        },
        ClassShare {
            class: DeadlineClass {
                name: "standard".to_string(),
                deadline_s: 45.0,
                priority: 0,
            },
            weight: 3.0,
        },
    ];
    scenario.deadline_s = 30.0;
    scenario.admission = AdmissionPolicy::EarliestDeadlineFirst;
    // Module-level batching: storm phases pile same-module work onto the
    // shared encoders; merging up to 6 text encodings (but never
    // batching generative heads) pays the per-execution overhead once.
    scenario.batch = Some(BatchPolicy {
        max_batch: 6,
        per_kind: vec![KindBatchCap {
            kind: ModuleKind::LanguageModel,
            max_batch: 1,
        }],
    });
    scenario.replan = ReplanPolicy {
        horizon_s: 900.0,
        charge_switching_downtime: true,
        ..ReplanPolicy::default()
    };
    // Fleet churn: the desktop (vision host, and a traffic source — it
    // may emit but not leave) thermally throttles to quarter speed
    // mid-run; later the GPU server appears one MAN hop away.
    scenario.events = vec![
        FleetEvent {
            at_s: 2_000.0,
            kind: FleetEventKind::DeviceSlowdown {
                device: "desktop".to_string(),
                factor: 0.25,
            },
        },
        FleetEvent {
            at_s: 3_000.0,
            kind: FleetEventKind::DeviceJoin {
                device: "server".to_string(),
            },
        },
    ];

    // --- 2. Serve the whole stream. ---------------------------------------
    let report = serve(&scenario)?;
    println!("{}", report.render_summary());

    // --- 3. Watch the SLO windows react to storms and churn. --------------
    //
    // Each snapshot summarizes the last `slo_window` completions; storm
    // phases push the rolling p95 up, the batched encoders absorb part
    // of it, and the server join (once accepted) pulls it back down.
    println!(
        "rolling p95 trajectory (one row per {} completions):",
        scenario.snapshot_every
    );
    for w in &report.windows {
        let bar_len = (w.p95_s * 4.0).round() as usize;
        println!(
            "  t={:>7.0}s  p95 {:>6.2}s  miss {:>4.1}%  {}",
            w.at_s,
            w.p95_s,
            100.0 * w.miss_rate,
            "#".repeat(bar_len.min(60))
        );
    }

    // --- 4. The control decisions the plane made. -------------------------
    for r in &report.replans {
        println!(
            "replan after `{}`: {} (break-even {:?} requests at {:.2} req/s observed)",
            r.trigger,
            if r.accepted { "accepted" } else { "rejected" },
            r.break_even_requests,
            r.observed_rate_per_s,
        );
    }

    // Every arrival is accounted for: completed or (visibly) shed.
    assert_eq!(report.completed + report.shed, report.arrived);
    Ok(())
}
