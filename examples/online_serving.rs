//! Online serving walkthrough: the `s2m3-serve` control plane driving a
//! sustained request stream through admission control, rolling SLO
//! windows, and live adaptive replanning while the fleet churns — the
//! production-shaped version of Sec. VI-C's adaptive-reallocation sketch.
//!
//! ```sh
//! cargo run --release -p s2m3 --example online_serving
//! ```

use s2m3::prelude::*;
use s2m3::serve::{FleetEvent, FleetEventKind, ReplanPolicy};
use s2m3::sim::workload::ArrivalProcess;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A bursty retrieval service on the edge fleet. -----------------
    //
    // Start from the canned churn scenario, then dial it down so the
    // walkthrough runs in a blink: 2,000 requests from a Markov-modulated
    // Poisson process (calm 0.1 req/s, storms of 0.8 req/s).
    let mut scenario = ServeScenario::churn_default();
    scenario.requests = 2_000;
    scenario.seed = "example/online-serving".to_string();
    // Calm phases sit below the fleet's ~0.38 req/s capacity; storm
    // phases push past it, so queues build and shedding kicks in.
    scenario.arrivals = ArrivalProcess::Mmpp {
        rates_per_s: vec![0.05, 0.5],
        mean_dwell_s: 120.0,
    };
    scenario.deadline_s = 30.0;
    scenario.admission = AdmissionPolicy::ShedOnOverload { max_queue: 8 };
    scenario.replan = ReplanPolicy {
        horizon_s: 900.0,
        charge_switching_downtime: true,
        ..ReplanPolicy::default()
    };
    // Fleet churn: the desktop (vision host) dies mid-run; later the GPU
    // server appears one MAN hop away.
    scenario.events = vec![
        FleetEvent {
            at_s: 2_000.0,
            kind: FleetEventKind::DeviceLeave {
                device: "desktop".to_string(),
            },
        },
        FleetEvent {
            at_s: 5_000.0,
            kind: FleetEventKind::DeviceJoin {
                device: "server".to_string(),
            },
        },
    ];

    // --- 2. Serve the whole stream. ---------------------------------------
    let report = serve(&scenario)?;
    println!("{}", report.render_summary());

    // --- 3. Watch the SLO windows react to churn. -------------------------
    //
    // Each snapshot summarizes the last `slo_window` completions; the p95
    // spike after the desktop leaves, and the recovery after the server
    // migration amortizes, are the whole story of adaptive serving.
    println!(
        "rolling p95 trajectory (one row per {} completions):",
        scenario.snapshot_every
    );
    for w in &report.windows {
        let bar_len = (w.p95_s * 4.0).round() as usize;
        println!(
            "  t={:>7.0}s  p95 {:>6.2}s  miss {:>4.1}%  {}",
            w.at_s,
            w.p95_s,
            100.0 * w.miss_rate,
            "#".repeat(bar_len.min(60))
        );
    }

    // --- 4. The control decisions the plane made. -------------------------
    for r in &report.replans {
        println!(
            "replan after `{}`: {} (break-even {:?} requests at {:.2} req/s observed)",
            r.trigger,
            if r.accepted { "accepted" } else { "rejected" },
            r.break_even_requests,
            r.observed_rate_per_s,
        );
    }

    // Every arrival is accounted for: completed or (visibly) shed.
    assert_eq!(report.completed + report.shed, report.arrived);
    Ok(())
}
