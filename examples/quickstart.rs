//! Quickstart: deploy one multi-modal model over the edge fleet, run a
//! real distributed inference, and compare against centralized execution.
//!
//! ```sh
//! cargo run --release -p s2m3 --example quickstart
//! ```

use s2m3::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's edge testbed: desktop, laptop, two Jetson Nanos.
    //    Jetson A (Wi-Fi) originates requests.
    let instance = Instance::single_model("CLIP ViT-B/16", 101)?;
    println!("fleet:");
    for d in instance.fleet().devices() {
        println!("  {:10} — {}", d.id.as_str(), d.description);
    }

    // 2. Split-and-share: greedy module placement (Algorithm 1).
    let request = instance.request(0, "CLIP ViT-B/16")?;
    let plan = Plan::greedy(&instance, vec![request.clone()])?;
    println!("\nplacement (greedy, Eq. 5/6):");
    for (module, device) in plan.placement.iter() {
        println!("  {module} -> {device}");
    }

    // 3. Predicted latency from the analytic objective (Eqs. 1–3).
    let latency = total_latency(&instance, &plan.routed[0].1, &request)?;
    println!("\npredicted end-to-end latency: {latency:.2} s (paper: ~2.48 s)");

    // 4. Execute for real: device worker threads, parallel encoder
    //    fan-out, head aggregation.
    let model = instance
        .deployment("CLIP ViT-B/16")
        .expect("model was deployed above")
        .model
        .clone();
    let input = RequestInput::synthetic(&model, "quickstart-image", 101);
    let runtime = Runtime::start(&instance, &plan)?;
    let distributed = runtime.infer(&request, &plan.routed[0].1, &input)?;
    runtime.shutdown();

    // 5. The split changes *where* modules run, never *what* they compute:
    //    outputs are bit-identical to a single-process run.
    let central = reference::run_model(&model, &input)?;
    assert_eq!(distributed, central);
    println!("split output == centralized output (bit-identical) ✓");

    let best = s2m3::tensor::ops::argmax_rows(&distributed)?[0];
    println!("top-1 candidate prompt index: {best}");
    Ok(())
}
