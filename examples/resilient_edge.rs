//! Resilient edge deployment: device loss, adaptive reallocation with
//! switching costs, and the intra-module partitioning fallback — the
//! Sec. V-B / VI-C mechanisms in one scenario.
//!
//! ```sh
//! cargo run --release -p s2m3 --example resilient_edge
//! ```

use s2m3::core::adaptive::replan;
use s2m3::core::partition::greedy_place_partitioned;
use s2m3::core::placement::greedy_place;
use s2m3::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A retrieval service runs on the edge fleet.
    let instance = Instance::single_model("CLIP ViT-B/16", 101)?;
    let placement = greedy_place(&instance)?;
    println!("initial placement:");
    for (m, d) in placement.iter() {
        println!("  {m} -> {d}");
    }

    // --- Scenario 1: the laptop leaves the network.
    let degraded = instance.with_fleet(instance.fleet().without(&["laptop"]))?;
    let decision = replan(&degraded, &placement)?;
    println!("\nlaptop lost — replanning:");
    for m in &decision.migrations {
        println!(
            "  migrate {} {} -> {}  (load cost {:.2} s)",
            m.module,
            m.from.as_ref().map(|d| d.as_str()).unwrap_or("(gone)"),
            m.to,
            m.cost_s
        );
    }
    println!(
        "  switching cost {:.2} s, new latency {:.2} s, mandatory: {}",
        decision.switching_cost_s,
        decision.new_latency_s,
        decision.mandatory()
    );

    // --- Scenario 2: the GPU server joins; is migrating worth it?
    let upgraded = instance.with_fleet(Fleet::standard_testbed())?;
    let decision = replan(&upgraded, &placement)?;
    println!("\nGPU server joined — replanning:");
    println!(
        "  old latency {:.2} s -> new latency {:.2} s, switching cost {:.2} s",
        decision.old_latency_s.unwrap_or(f64::NAN),
        decision.new_latency_s,
        decision.switching_cost_s
    );
    match decision.break_even_requests() {
        Some(n) => println!("  switch pays for itself after {n} requests"),
        None => println!("  not worth switching"),
    }

    // --- Scenario 3: a 13B model that fits nowhere — Sec. V-B fallback.
    let big = Instance::single_model("LLaVA-v1.5-13B", 1)?;
    println!("\nLLaVA-v1.5-13B on the edge fleet:");
    match greedy_place(&big) {
        Ok(_) => println!("  unexpectedly feasible"),
        Err(e) => println!("  whole-module placement: {e}"),
    }
    let pp = greedy_place_partitioned(&big)?;
    for plan in &pp.sharded {
        println!(
            "  partitioned {} into {} pipeline stages:",
            plan.base.id,
            plan.shard_count()
        );
        for (shard, dev) in &plan.stages {
            println!("    {} -> {dev}", shard.id);
        }
        let profile = big.deployments()[0].profile;
        println!(
            "  pipelined head latency: {:.2} s (per-token activation hops included)",
            plan.pipeline_latency(&big, &profile)?
        );
    }
    Ok(())
}
