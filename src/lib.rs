//! Workspace-level umbrella for the S2M3 reproduction.
//!
//! This crate exists so the repository root owns the cross-crate
//! integration tests in `tests/` and the walkthrough examples in
//! `examples/`. All functionality lives in the `s2m3` facade it
//! re-exports; see that crate (or the repository `README.md`) for the
//! actual API.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use s2m3;
